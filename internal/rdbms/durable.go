package rdbms

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Durable lifecycle: a database opened with Open lives in a directory —
// one snapshot file plus a sequence of WAL segments:
//
//	<dir>/snapshot.db     last checkpoint (atomic rename)
//	<dir>/wal-000042.log  mutations since (and during) that checkpoint
//
// Open recovers snapshot-then-replay; Checkpoint rotates the WAL, writes a
// fresh snapshot and prunes the old segments. Replay is tolerant: a torn
// final record (the crash window of the per-record flush) truncates the
// segment at the last good boundary instead of aborting recovery.

// ErrNoDir is returned by durable operations on an in-memory database.
var ErrNoDir = errors.New("rdbms: database has no data directory")

// ErrLocked is returned when another live process holds the data
// directory: two writers appending to the same WAL segment would
// interleave record bytes and corrupt the log.
var ErrLocked = errors.New("rdbms: data directory locked by another process")

// snapshotFile is the checkpoint file name inside a data directory.
const snapshotFile = "snapshot.db"

// lockFile is the advisory flock target inside a data directory. The OS
// releases the lock when the holding process dies, so a crash never
// strands the directory.
const lockFile = "LOCK"

// durableStats is the checkpoint/recovery bookkeeping behind StorageStats.
type durableStats struct {
	checkpoints        int
	lastCheckpoint     time.Time
	snapshotBytes      int64
	recoveredRecords   int
	recoveredTruncated bool
}

// StorageStats is an observable snapshot of the storage engine: partition
// layout, WAL volume and checkpoint/recovery history.
type StorageStats struct {
	// Dir is the data directory ("" for in-memory databases).
	Dir string `json:"dir,omitempty"`
	// Durable reports whether the database has a data directory.
	Durable bool `json:"durable"`
	// Tables and Rows size the store.
	Tables int `json:"tables"`
	Rows   int `json:"rows"`
	// TablePartitions maps table name to its lock-stripe count.
	TablePartitions map[string]int `json:"table_partitions"`
	// WALRecords / WALBytes count appends since the database was opened
	// (across segment rotations).
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// WALSegment is the current segment sequence number.
	WALSegment int `json:"wal_segment"`
	// Checkpoints counts completed checkpoints since open; LastCheckpoint
	// and SnapshotBytes describe the most recent one.
	Checkpoints    int       `json:"checkpoints"`
	LastCheckpoint time.Time `json:"last_checkpoint"`
	SnapshotBytes  int64     `json:"snapshot_bytes"`
	// RecoveredRecords is the number of WAL records replayed by Open;
	// RecoveredTruncated reports whether recovery had to truncate a torn
	// or corrupt log tail.
	RecoveredRecords   int  `json:"recovered_records"`
	RecoveredTruncated bool `json:"recovered_truncated"`
}

// CheckpointStats reports one completed checkpoint.
type CheckpointStats struct {
	// Duration is the wall-clock time of the checkpoint.
	Duration time.Duration
	// SnapshotBytes is the size of the written snapshot.
	SnapshotBytes int64
	// Tables and Rows count what the snapshot contains.
	Tables int
	Rows   int
	// SegmentsPruned is the number of WAL segments deleted.
	SegmentsPruned int
	// WALSegment is the segment now receiving appends.
	WALSegment int
}

// Open opens (or creates) a durable database in dir, recovering state from
// the last snapshot plus WAL replay.
func Open(dir string) (*DB, error) { return OpenWithOptions(dir, Options{}) }

// OpenWithOptions is Open with explicit database options. The partition
// option applies to tables created after the open; recovered tables keep
// the partition count recorded in the snapshot/WAL.
func OpenWithOptions(dir string, o Options) (*DB, error) {
	if dir == "" {
		return nil, ErrNoDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	var db *DB
	fail := func(err error) (*DB, error) {
		lock.Close()
		return nil, err
	}
	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		db, err = Restore(f)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("restore %s: %w", snapPath, err))
		}
	} else if !os.IsNotExist(err) {
		return fail(err)
	}
	if db == nil {
		db = NewDBWithOptions(Options{Partitions: o.Partitions})
	} else if o.Partitions > 0 {
		db.partitions = o.Partitions
	}

	segs, err := walSegments(dir)
	if err != nil {
		return fail(err)
	}
	recovered, truncated := 0, false
	for i, seg := range segs {
		n, trunc, err := replaySegment(db, seg)
		recovered += n
		if err != nil {
			return fail(fmt.Errorf("replay %s: %w", seg, err))
		}
		if trunc {
			truncated = true
			// Records in later segments follow a gap; applying them would
			// fabricate a state no run ever produced. Drop them.
			for _, later := range segs[i+1:] {
				_ = os.Remove(later)
			}
			segs = segs[:i+1]
			break
		}
	}

	var f *os.File
	seq := 1
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		seq = segSeq(last)
		f, err = os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		f, err = os.OpenFile(filepath.Join(dir, segName(1)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	}
	if err != nil {
		return fail(err)
	}
	db.attachWAL(NewWALFile(f))
	db.dir = dir
	db.lock = lock
	db.walSeq = seq
	db.stats.recoveredRecords = recovered
	db.stats.recoveredTruncated = truncated
	return db, nil
}

// acquireDirLock takes the directory's advisory lock, refusing to share a
// data directory between live processes.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	return f, nil
}

// Checkpoint rotates the WAL onto a fresh segment, writes a snapshot of
// every table (each under its own whole-table read barrier, so the rest of
// the store keeps serving), atomically installs it and prunes the old
// segments. Safe to call online under concurrent readers and writers;
// concurrent checkpoints serialise.
func (db *DB) Checkpoint() (CheckpointStats, error) {
	if db.dir == "" {
		return CheckpointStats{}, ErrNoDir
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	start := time.Now()

	// 1. Rotate: every append from here lands in the new segment, so any
	// record possibly missing from the snapshot below survives the prune.
	newSeq := db.currentSeq() + 1
	segPath := filepath.Join(db.dir, segName(newSeq))
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return CheckpointStats{}, err
	}
	old, err := db.wal.rotate(f)
	if err != nil {
		f.Close()
		_ = os.Remove(segPath)
		return CheckpointStats{}, err
	}
	if old != nil {
		_ = old.Close()
	}
	db.setSeq(newSeq)

	// 2. Snapshot to a temp file, fsync, then 3. atomically install it.
	tmp := filepath.Join(db.dir, snapshotFile+".tmp")
	sf, err := os.Create(tmp)
	if err != nil {
		return CheckpointStats{}, err
	}
	if err := db.Snapshot(sf); err != nil {
		sf.Close()
		_ = os.Remove(tmp)
		return CheckpointStats{}, err
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		_ = os.Remove(tmp)
		return CheckpointStats{}, err
	}
	info, _ := sf.Stat()
	if err := sf.Close(); err != nil {
		return CheckpointStats{}, err
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapshotFile)); err != nil {
		return CheckpointStats{}, err
	}
	syncDir(db.dir)

	// 4. Prune: segments before the rotation are fully contained in the
	// installed snapshot.
	pruned := 0
	if segs, err := walSegments(db.dir); err == nil {
		for _, seg := range segs {
			if segSeq(seg) < newSeq {
				if os.Remove(seg) == nil {
					pruned++
				}
			}
		}
	}

	st := CheckpointStats{
		Duration:       time.Since(start),
		SegmentsPruned: pruned,
		WALSegment:     newSeq,
	}
	if info != nil {
		st.SnapshotBytes = info.Size()
	}
	for _, t := range db.tablesSorted() {
		st.Tables++
		st.Rows += t.Len()
	}
	db.statsMu.Lock()
	db.stats.checkpoints++
	db.stats.lastCheckpoint = time.Now()
	db.stats.snapshotBytes = st.SnapshotBytes
	db.statsMu.Unlock()
	return st, nil
}

// Close flushes and fsyncs the WAL, releases the segment file and the
// data-directory lock. It does not checkpoint — callers wanting a
// compacted shutdown call Checkpoint first. Safe on in-memory databases
// (no-op).
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	err := db.wal.closeFile()
	if db.lock != nil {
		if cerr := db.lock.Close(); err == nil {
			err = cerr
		}
		db.lock = nil
	}
	return err
}

// closeFile flushes, fsyncs and closes the underlying segment file. A
// broken WAL skips the flush (its tail is already torn) and just releases
// the file.
func (l *WAL) closeFile() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if !l.broken {
		err = l.w.Flush()
	}
	if l.f != nil {
		if serr := l.f.Sync(); err == nil && !l.broken {
			err = serr
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// Abandon simulates a process crash for tests and crash drills: it drops
// the WAL file handle and the data-directory lock WITHOUT flushing or
// syncing, exactly as the kernel would when the process dies. The DB
// value must not be used afterwards; a subsequent Open(dir) recovers from
// whatever reached the OS.
func (db *DB) Abandon() {
	if db.wal != nil {
		db.wal.mu.Lock()
		if db.wal.f != nil {
			_ = db.wal.f.Close()
			db.wal.f = nil
		}
		db.wal.broken = true // refuse any straggler appends
		db.wal.mu.Unlock()
	}
	if db.lock != nil {
		_ = db.lock.Close()
		db.lock = nil
	}
}

// StorageStats reports the storage engine's observable state.
func (db *DB) StorageStats() StorageStats {
	st := StorageStats{
		Dir:             db.dir,
		Durable:         db.dir != "",
		TablePartitions: map[string]int{},
	}
	for _, t := range db.tablesSorted() {
		st.Tables++
		st.Rows += t.Len()
		st.TablePartitions[t.Name()] = t.Partitions()
	}
	if db.wal != nil {
		st.WALRecords = db.wal.Records()
		st.WALBytes = db.wal.Bytes()
	}
	db.statsMu.Lock()
	st.WALSegment = db.walSeq
	st.Checkpoints = db.stats.checkpoints
	st.LastCheckpoint = db.stats.lastCheckpoint
	st.SnapshotBytes = db.stats.snapshotBytes
	st.RecoveredRecords = db.stats.recoveredRecords
	st.RecoveredTruncated = db.stats.recoveredTruncated
	db.statsMu.Unlock()
	return st
}

func (db *DB) currentSeq() int {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.walSeq
}

func (db *DB) setSeq(seq int) {
	db.statsMu.Lock()
	db.walSeq = seq
	db.statsMu.Unlock()
}

// segName formats a WAL segment file name; zero-padded so lexicographic
// order is replay order.
func segName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// segSeq parses a segment sequence number from its path (0 if malformed).
func segSeq(path string) int {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "wal-")
	base = strings.TrimSuffix(base, ".log")
	n, err := strconv.Atoi(base)
	if err != nil {
		return 0
	}
	return n
}

// walSegments lists the directory's WAL segments in replay order.
func walSegments(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Slice(matches, func(i, j int) bool { return segSeq(matches[i]) < segSeq(matches[j]) })
	return matches, nil
}

// replaySegment replays one WAL segment onto db with recovery (loose)
// semantics. A record that fails to decode — a torn tail from a crash
// mid-append, or corruption — truncates the file at the last good record
// boundary and reports trunc=true; it never aborts recovery. Errors
// applying a well-formed record (schema drift, disk errors) do abort.
func replaySegment(db *DB, path string) (applied int, trunc bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)
	var good int64
	for {
		rec, rerr := readRecord(br)
		if rerr == io.EOF {
			f.Close()
			return applied, false, nil
		}
		if rerr != nil {
			// Torn or corrupt record: cut the log at the last good
			// boundary so the next open sees a clean tail.
			f.Close()
			if terr := os.Truncate(path, good); terr != nil {
				return applied, true, terr
			}
			return applied, true, nil
		}
		if aerr := applyRecord(db, rec, true); aerr != nil {
			f.Close()
			return applied, false, aerr
		}
		applied++
		good = cr.n - int64(br.Buffered())
	}
}

// countingReader tracks the bytes handed to the buffered decoder, so the
// last good record boundary can be computed as read - buffered.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
