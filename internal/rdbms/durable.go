package rdbms

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/rdbms/vfs"
)

// Durable lifecycle: a database opened with Open lives in a directory —
// a manifest-chained sequence of snapshot generations plus the WAL
// segments written since the last checkpoint:
//
//	<dir>/MANIFEST        generation chain: one base + ordered deltas
//	<dir>/snap-000007/    snapshot generation (tables.dat inside)
//	<dir>/wal-000042.log  mutations since (and during) the last checkpoint
//
// Checkpoints are incremental: each one rotates the WAL and serialises
// only the partitions dirtied since the previous checkpoint into a new
// delta generation, chaining it onto the manifest — checkpoint cost
// follows the write rate, not the corpus size. When the delta chain
// exceeds Options.DeltaLimit the checkpoint compacts: it writes a full
// base generation and prunes the old chain. Open recovers manifest → base
// → deltas → WAL segments (a legacy single-file snapshot.db is still
// honoured when no manifest exists). WAL replay is tolerant: a torn final
// record truncates the segment at the last good boundary instead of
// aborting recovery — but a generation named by the manifest must exist
// and apply completely, or Open fails loudly rather than silently
// dropping committed data.

// ErrNoDir is returned by durable operations on an in-memory database.
var ErrNoDir = errors.New("rdbms: database has no data directory")

// ErrManifest is returned by Open when the manifest references a snapshot
// generation that is missing or unreadable. Unlike a torn WAL tail (an
// expected crash artefact, tolerated by truncation), a broken generation
// chain means committed data is gone; recovery must fail, not improvise.
var ErrManifest = errors.New("rdbms: manifest references missing or corrupt snapshot generation")

// ErrLocked is returned when another live process holds the data
// directory: two writers appending to the same WAL segment would
// interleave record bytes and corrupt the log.
var ErrLocked = errors.New("rdbms: data directory locked by another process")

// snapshotFile is the legacy single-file checkpoint name (pre-incremental
// layouts); Open still restores from it when no manifest exists, and the
// first incremental checkpoint retires it.
const snapshotFile = "snapshot.db"

// manifestFile names the generation chain inside a data directory.
const manifestFile = "MANIFEST"

// genDataFile is the serialised payload inside a generation directory.
const genDataFile = "tables.dat"

// lockFile is the advisory flock target inside a data directory. The OS
// releases the lock when the holding process dies, so a crash never
// strands the directory.
const lockFile = "LOCK"

// removeFile / removeTree are the prune primitives, indirected so tests
// can inject removal failures (prune is best-effort by contract: a
// leftover file must never fail an otherwise-successful checkpoint).
var (
	removeFile = func(fsys vfs.FS, path string) error { return fsys.Remove(path) }
	removeTree = func(fsys vfs.FS, path string) error { return fsys.RemoveAll(path) }
)

// durableStats is the checkpoint/recovery bookkeeping behind StorageStats.
type durableStats struct {
	checkpoints        int
	lastCheckpoint     time.Time
	snapshotBytes      int64
	recoveredRecords   int
	recoveredTruncated bool
	compactions        int
	lastFull           bool
	lastParts          int
	pruneFailures      int
}

// StorageStats is an observable snapshot of the storage engine: partition
// layout, WAL volume and checkpoint/recovery history.
type StorageStats struct {
	// Dir is the data directory ("" for in-memory databases).
	Dir string `json:"dir,omitempty"`
	// Durable reports whether the database has a data directory.
	Durable bool `json:"durable"`
	// Tables and Rows size the store.
	Tables int `json:"tables"`
	Rows   int `json:"rows"`
	// TablePartitions maps table name to its lock-stripe count.
	TablePartitions map[string]int `json:"table_partitions"`
	// WALRecords / WALBytes count appends since the database was opened
	// (across segment rotations).
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// WALSegment is the current segment sequence number.
	WALSegment int `json:"wal_segment"`
	// WALFsyncPolicy is the configured fsync policy ("checkpoint",
	// "interval" or "always"); WALFsyncs counts fsyncs issued by the
	// policy's background flusher and WALFsyncBatchedRecords the records
	// those fsyncs committed — their ratio is the achieved group-commit
	// batch size.
	WALFsyncPolicy         string `json:"wal_fsync_policy"`
	WALFsyncs              uint64 `json:"wal_fsyncs"`
	WALFsyncBatchedRecords uint64 `json:"wal_fsync_batched_records"`
	// Checkpoints counts completed checkpoints since open; LastCheckpoint
	// and SnapshotBytes describe the most recent one.
	Checkpoints    int       `json:"checkpoints"`
	LastCheckpoint time.Time `json:"last_checkpoint"`
	SnapshotBytes  int64     `json:"snapshot_bytes"`
	// SnapshotGeneration is the highest snapshot generation number in the
	// manifest chain; DeltaChainLength is the number of delta generations
	// chained onto the base (0 right after a full checkpoint).
	SnapshotGeneration int `json:"snapshot_generation"`
	DeltaChainLength   int `json:"delta_chain_length"`
	// Compactions counts checkpoints that folded the delta chain back
	// into a full base; LastCheckpointFull reports whether the most
	// recent checkpoint was one, and LastCheckpointPartitions how many
	// partitions it serialised.
	Compactions              int  `json:"compactions"`
	LastCheckpointFull       bool `json:"last_checkpoint_full"`
	LastCheckpointPartitions int  `json:"last_checkpoint_partitions"`
	// PruneFailures counts WAL segments, generation directories and
	// legacy snapshots that a checkpoint failed to delete. Prune is
	// best-effort: a leftover file never fails a checkpoint, but it is
	// surfaced here so operators notice disk not being reclaimed.
	PruneFailures int `json:"prune_failures"`
	// RecoveredRecords is the number of WAL records replayed by Open;
	// RecoveredTruncated reports whether recovery had to truncate a torn
	// or corrupt log tail.
	RecoveredRecords   int  `json:"recovered_records"`
	RecoveredTruncated bool `json:"recovered_truncated"`
}

// CheckpointStats reports one completed checkpoint.
type CheckpointStats struct {
	// Duration is the wall-clock time of the checkpoint.
	Duration time.Duration
	// SnapshotBytes is the size of the written snapshot generation (0 for
	// a no-op checkpoint that found nothing dirty).
	SnapshotBytes int64
	// Tables and Rows count the tables and rows serialised into the
	// generation (a delta counts only the tables and rows it carries).
	Tables int
	Rows   int
	// Generation is the generation number this checkpoint wrote (0 for a
	// no-op checkpoint); Full reports whether it was a base (first
	// checkpoint, compaction, or DeltaLimit < 0) rather than a delta.
	Generation int
	Full       bool
	// PartitionsWritten counts the partitions serialised;
	// DeltaChainLen is the manifest's delta count after this checkpoint.
	PartitionsWritten int
	DeltaChainLen     int
	// SegmentsPruned is the number of WAL segments deleted; PruneFailures
	// counts files the prune could not delete (surfaced, never fatal).
	SegmentsPruned int
	PruneFailures  int
	// WALSegment is the segment now receiving appends.
	WALSegment int
}

// Open opens (or creates) a durable database in dir, recovering state from
// the last snapshot plus WAL replay.
func Open(dir string) (*DB, error) { return OpenWithOptions(dir, Options{}) }

// OpenWithOptions is Open with explicit database options. The partition
// option applies to tables created after the open; recovered tables keep
// the partition count recorded in the snapshot/WAL.
func OpenWithOptions(dir string, o Options) (*DB, error) {
	if dir == "" {
		return nil, ErrNoDir
	}
	fsys := o.FS
	if fsys == nil {
		fsys = vfs.NewOS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	lock, err := acquireDirLock(fsys, dir)
	if err != nil {
		return nil, err
	}
	var db *DB
	fail := func(err error) (*DB, error) {
		lock.Close()
		return nil, err
	}

	// Recover the snapshot chain: manifest → base generation → deltas in
	// chain order. A generation the manifest references must exist and
	// apply completely — failing loudly here beats silently dropping
	// committed partitions. Directories without a manifest fall back to
	// the legacy single-file snapshot.
	base, deltas, walFloor, err := readManifest(fsys, dir)
	if err != nil {
		return fail(err)
	}
	if base > 0 {
		db = NewDBWithOptions(Options{Partitions: o.Partitions})
		for _, gen := range append([]int{base}, deltas...) {
			if err := applyGenerationFile(db, fsys, filepath.Join(dir, genDirName(gen), genDataFile)); err != nil {
				return fail(fmt.Errorf("%w: generation %d: %v", ErrManifest, gen, err))
			}
		}
	} else {
		snapPath := filepath.Join(dir, snapshotFile)
		if f, err := fsys.OpenRead(snapPath); err == nil {
			db, err = Restore(f)
			f.Close()
			if err != nil {
				return fail(fmt.Errorf("restore %s: %w", snapPath, err))
			}
		} else if !errors.Is(err, fs.ErrNotExist) {
			return fail(err)
		}
	}
	if db == nil {
		db = NewDBWithOptions(Options{Partitions: o.Partitions})
	} else if o.Partitions > 0 {
		db.partitions = o.Partitions
	}
	// The generations hold exactly the recovered state: start every stripe
	// clean so the next checkpoint's delta carries only what the WAL
	// replay below and live traffic actually dirty.
	for _, t := range db.tablesSorted() {
		t.markAllClean()
	}

	segs, err := walSegments(fsys, dir)
	if err != nil {
		return fail(err)
	}
	// Segments below the manifest's WAL floor are superseded by the chain;
	// they exist only because a checkpoint's best-effort prune failed.
	// Replaying one over the chain would resurrect deleted rows, so skip
	// them and retry the reclaim.
	live := segs[:0]
	for _, seg := range segs {
		if segSeq(seg) < walFloor {
			_ = fsys.Remove(seg)
			continue
		}
		live = append(live, seg)
	}
	segs = live
	recovered, truncated := 0, false
	for i, seg := range segs {
		n, trunc, err := replaySegment(db, fsys, seg)
		recovered += n
		if err != nil {
			return fail(fmt.Errorf("replay %s: %w", seg, err))
		}
		if trunc {
			truncated = true
			// Records in later segments follow a gap; applying them would
			// fabricate a state no run ever produced. Drop them.
			for _, later := range segs[i+1:] {
				_ = fsys.Remove(later)
			}
			segs = segs[:i+1]
			break
		}
	}

	var f vfs.File
	// A fresh segment must start at or above the floor, or the next open
	// would reap it as superseded.
	seq := 1
	if walFloor > seq {
		seq = walFloor
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		seq = segSeq(last)
		f, err = fsys.OpenAppend(last)
	} else {
		f, err = fsys.CreateExclusive(filepath.Join(dir, segName(seq)))
		if err == nil {
			// Make the fresh segment's directory entry durable: its first
			// fsync commits its content, but the entry itself lives in the
			// directory.
			_ = fsys.SyncDir(dir)
		}
	}
	if err != nil {
		return fail(err)
	}
	db.attachWAL(NewWALFilePolicy(f, o.Fsync, o.FsyncInterval))
	db.dir = dir
	db.fs = fsys
	db.lock = lock
	db.walSeq = seq
	db.deltaLimit = o.DeltaLimit
	if db.deltaLimit == 0 {
		db.deltaLimit = DefaultDeltaLimit
	}
	db.snapBase = base
	db.snapDeltas = deltas
	db.snapGen = maxGeneration(fsys, dir, base, deltas)
	db.stats.recoveredRecords = recovered
	db.stats.recoveredTruncated = truncated
	return db, nil
}

// applyGenerationFile applies one generation payload from disk.
func applyGenerationFile(db *DB, fsys vfs.FS, path string) error {
	f, err := fsys.OpenRead(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return applyGeneration(db, f)
}

// genDirName formats a snapshot generation directory name; zero-padded so
// lexicographic order is generation order.
func genDirName(gen int) string { return fmt.Sprintf("snap-%06d", gen) }

// genDirSeq parses a generation number from a snap directory path (0 if
// malformed, e.g. a leftover .tmp directory).
func genDirSeq(path string) int {
	base := strings.TrimPrefix(filepath.Base(path), "snap-")
	n, err := strconv.Atoi(base)
	if err != nil {
		return 0
	}
	return n
}

// maxGeneration returns the highest generation number in use — referenced
// by the manifest or present on disk (an orphan directory from a crash
// between generation rename and manifest install must not be reused).
func maxGeneration(fsys vfs.FS, dir string, base int, deltas []int) int {
	maxGen := base
	for _, d := range deltas {
		if d > maxGen {
			maxGen = d
		}
	}
	if matches, err := fsys.Glob(filepath.Join(dir, "snap-*")); err == nil {
		for _, m := range matches {
			if n := genDirSeq(m); n > maxGen {
				maxGen = n
			}
		}
	}
	return maxGen
}

// manifestMagic heads the manifest file.
const manifestMagic = "SLMANIFEST1"

// readManifest parses <dir>/MANIFEST into the generation chain plus the
// WAL floor: the first segment sequence the chain does NOT supersede.
// Segments below the floor are dead — the chain already contains their
// effects — and must be skipped at recovery even if a prune failed to
// delete them (replaying a stale pre-chain segment over the chain would
// resurrect deleted rows). A missing manifest yields base 0 (legacy or
// fresh directory); a malformed one is an error — improvising a chain
// risks silently dropping data.
func readManifest(fsys vfs.FS, dir string) (base int, deltas []int, walFloor int, err error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil, 0, nil
	}
	if err != nil {
		return 0, nil, 0, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != manifestMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad manifest header", ErrManifest)
	}
	for i, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return 0, nil, 0, fmt.Errorf("%w: bad manifest line %q", ErrManifest, line)
		}
		n, aerr := strconv.Atoi(fields[1])
		if aerr != nil || n <= 0 {
			return 0, nil, 0, fmt.Errorf("%w: bad manifest number %q", ErrManifest, fields[1])
		}
		switch {
		case i == 0 && fields[0] == "base":
			base = n
		case i > 0 && fields[0] == "delta" && walFloor == 0:
			deltas = append(deltas, n)
		case i > 0 && fields[0] == "wal" && walFloor == 0:
			walFloor = n
		default:
			return 0, nil, 0, fmt.Errorf("%w: bad manifest line %q", ErrManifest, line)
		}
	}
	return base, deltas, walFloor, nil
}

// writeManifest atomically installs the generation chain and the WAL
// floor: tmp + fsync + rename + directory sync. The rename is the
// checkpoint's commit point.
func writeManifest(fsys vfs.FS, dir string, base int, deltas []int, walFloor int) error {
	var b strings.Builder
	b.WriteString(manifestMagic)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "base %d\n", base)
	for _, d := range deltas {
		fmt.Fprintf(&b, "delta %d\n", d)
	}
	fmt.Fprintf(&b, "wal %d\n", walFloor)
	tmp := filepath.Join(dir, manifestFile+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, b.String()); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	_ = fsys.SyncDir(dir)
	return nil
}

// acquireDirLock takes the directory's advisory lock, refusing to share a
// data directory between live processes.
func acquireDirLock(fsys vfs.FS, dir string) (io.Closer, error) {
	c, err := fsys.Lock(filepath.Join(dir, lockFile))
	if errors.Is(err, vfs.ErrLockHeld) {
		return nil, fmt.Errorf("%w: %s", ErrLocked, dir)
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Checkpoint rotates the WAL onto a fresh segment and persists an
// incremental snapshot generation: only the partitions dirtied since the
// last checkpoint are re-serialised (each table under its own whole-table
// read barrier, so the rest of the store keeps serving), the generation is
// atomically installed by a manifest rename, and the superseded WAL
// segments are pruned. The first checkpoint — and every checkpoint once
// the delta chain exceeds Options.DeltaLimit — writes a full base
// generation instead, compacting the chain. Prune failures never fail the
// checkpoint; they are counted in the stats. Safe to call online under
// concurrent readers and writers; concurrent checkpoints serialise.
func (db *DB) Checkpoint() (CheckpointStats, error) {
	if db.dir == "" {
		return CheckpointStats{}, ErrNoDir
	}
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	start := time.Now() //scilint:ignore determinism checkpoint duration is operator telemetry, not replayed state

	// 1. Rotate: every append from here lands in the new segment, so any
	// record possibly missing from the generation below survives the
	// prune. Rotation also repairs a broken WAL (clean segment; the
	// generation captures what the torn one could not log).
	newSeq := db.currentSeq() + 1
	segPath := filepath.Join(db.dir, segName(newSeq))
	f, err := db.fs.CreateExclusive(segPath)
	if err != nil {
		return CheckpointStats{}, err
	}
	old, err := db.wal.rotate(f)
	if err != nil {
		f.Close()
		_ = db.fs.Remove(segPath)
		return CheckpointStats{}, err
	}
	if old != nil {
		_ = old.Close()
	}
	db.setSeq(newSeq)
	// The new segment's directory entry must survive a power cut along
	// with the records its fsyncs will commit.
	_ = db.fs.SyncDir(db.dir)

	full := db.snapBase == 0 || db.deltaLimit < 0 || len(db.snapDeltas) >= db.deltaLimit
	// A dropped table not yet folded into a base generation forces a
	// compaction: a delta would let the WAL floor pass the drop record
	// while an older chained generation still carries the table, and the
	// next recovery would resurrect it.
	db.statsMu.Lock()
	dropsSeen := db.dropEpoch
	if dropsSeen > db.handledDropEpoch {
		full = true
	}
	db.statsMu.Unlock()

	// 2. Serialise the generation to a temp directory, fsync, then
	// 3. atomically install: rename the directory, then commit by
	// rewriting the manifest (tmp + fsync + rename). The generation
	// number is consumed at allocation, success or not: a checkpoint that
	// fails after its rename (e.g. the manifest write) leaves an orphan
	// snap directory, and reusing the number would make every later
	// rename fail on it.
	gen := db.snapGen + 1
	db.statsMu.Lock()
	db.snapGen = gen
	db.statsMu.Unlock()
	tmpDir := filepath.Join(db.dir, genDirName(gen)+".tmp")
	_ = db.fs.RemoveAll(tmpDir)
	if err := db.fs.MkdirAll(tmpDir); err != nil {
		return CheckpointStats{}, err
	}
	sf, err := db.fs.Create(filepath.Join(tmpDir, genDataFile))
	if err != nil {
		return CheckpointStats{}, err
	}
	cuts, nTables, nParts, nRows, err := db.writeGeneration(sf, full)
	if err == nil {
		err = sf.Sync()
	}
	if err != nil {
		sf.Close()
		_ = db.fs.RemoveAll(tmpDir)
		return CheckpointStats{}, err
	}
	info, _ := sf.Stat()
	if err := sf.Close(); err != nil {
		_ = db.fs.RemoveAll(tmpDir)
		return CheckpointStats{}, err
	}
	// Make the directory entry for tables.dat durable too: fsyncing the
	// file alone does not persist its name in the generation directory,
	// and a manifest referencing a generation whose payload entry was
	// lost to a power cut would make the store unopenable after the WAL
	// segments below are pruned.
	_ = db.fs.SyncDir(tmpDir)

	st := CheckpointStats{WALSegment: newSeq, Full: full}
	compacted := full && db.snapBase != 0
	if nParts == 0 && !full {
		// Nothing dirtied since the last checkpoint: no generation to
		// chain. The rotation still happened (repairing a broken WAL) and
		// the old segments still hold nothing the chain lacks, so prune.
		_ = db.fs.RemoveAll(tmpDir)
		st.DeltaChainLen = len(db.snapDeltas)
		st.Generation = 0
	} else {
		genDir := filepath.Join(db.dir, genDirName(gen))
		if err := db.fs.Rename(tmpDir, genDir); err != nil {
			_ = db.fs.RemoveAll(tmpDir)
			return CheckpointStats{}, err
		}
		_ = db.fs.SyncDir(db.dir)
		base, deltas := db.snapBase, db.snapDeltas
		if full {
			base, deltas = gen, nil
		} else {
			deltas = append(append([]int{}, deltas...), gen)
		}
		// The floor is this checkpoint's rotation seq: every earlier
		// segment's effects are in the chain being installed.
		if err := writeManifest(db.fs, db.dir, base, deltas, newSeq); err != nil {
			// The orphan generation directory is ignored by recovery (not
			// in the manifest) and retired by a later compaction.
			return CheckpointStats{}, err
		}
		// Committed: advance the chain and the per-partition clean marks.
		for _, c := range cuts {
			c.table.markClean(c.cuts)
		}
		db.statsMu.Lock()
		db.snapBase, db.snapDeltas = base, deltas
		if full && dropsSeen > db.handledDropEpoch {
			db.handledDropEpoch = dropsSeen
		}
		db.statsMu.Unlock()
		st.Generation = gen
		st.DeltaChainLen = len(deltas)
		st.Tables = nTables
		st.PartitionsWritten = nParts
		st.Rows = nRows
		if info != nil {
			st.SnapshotBytes = info.Size()
		}
	}

	// 4. Prune: segments before the rotation are fully contained in the
	// installed chain, and a compaction retires the superseded generations
	// and any legacy snapshot. Best-effort by contract: a file that will
	// not delete is surfaced in the stats, never a checkpoint failure.
	pruneFailures := 0
	// A registered replication cursor holds segments from its position up:
	// pruning past a connected follower would force a full resync, so the
	// prune floor is min(rotation seq, lowest held seq).
	pruneBelow := newSeq
	if held := db.minHeldWALSeq(); held > 0 && held < pruneBelow {
		pruneBelow = held
	}
	if segs, err := walSegments(db.fs, db.dir); err == nil {
		for _, seg := range segs {
			if segSeq(seg) < pruneBelow {
				if removeFile(db.fs, seg) == nil {
					st.SegmentsPruned++
				} else {
					pruneFailures++
				}
			}
		}
	}
	if full && st.Generation != 0 {
		heldGens := db.heldGenerations()
		if matches, err := db.fs.Glob(filepath.Join(db.dir, "snap-*")); err == nil {
			for _, m := range matches {
				if m == filepath.Join(db.dir, genDirName(gen)) {
					continue
				}
				// Generations mid-ship to a syncing follower survive the
				// compaction; the next compaction after the follower moves
				// on to WAL streaming retires them.
				if heldGens[genDirSeq(m)] {
					continue
				}
				if removeTree(db.fs, m) != nil {
					pruneFailures++
				}
			}
		}
		if legacy := filepath.Join(db.dir, snapshotFile); removeFile(db.fs, legacy) != nil {
			if _, serr := db.fs.Stat(legacy); serr == nil {
				pruneFailures++
			}
		}
	}
	st.PruneFailures = pruneFailures
	st.Duration = time.Since(start) //scilint:ignore determinism checkpoint duration is operator telemetry, not replayed state

	mCheckpoints.Inc()
	mCheckpointDur.ObserveDuration(st.Duration)
	if st.SnapshotBytes > 0 {
		mCheckpointBytes.Add(uint64(st.SnapshotBytes))
	}

	db.statsMu.Lock()
	db.stats.checkpoints++
	db.stats.lastCheckpoint = time.Now() //scilint:ignore determinism wall-clock checkpoint stamp feeds /api/stats, not recovery
	if st.Generation != 0 {
		db.stats.snapshotBytes = st.SnapshotBytes
		db.stats.lastFull = full
		db.stats.lastParts = st.PartitionsWritten
		if compacted {
			db.stats.compactions++
		}
	}
	db.stats.pruneFailures += pruneFailures
	db.statsMu.Unlock()
	return st, nil
}

// Close flushes and fsyncs the WAL, releases the segment file and the
// data-directory lock. It does not checkpoint — callers wanting a
// compacted shutdown call Checkpoint first. Safe on in-memory databases
// (no-op).
func (db *DB) Close() error {
	if db.wal == nil {
		return nil
	}
	err := db.wal.closeFile()
	if db.lock != nil {
		if cerr := db.lock.Close(); err == nil {
			err = cerr
		}
		db.lock = nil
	}
	return err
}

// closeFile flushes, fsyncs and closes the underlying segment file, and
// stops the background flusher of interval/always policies. A broken WAL
// skips the flush (its tail is already torn) and just releases the file.
// The close's own successful fsync advances the durable watermark: a
// group-commit appender parked while Close ran must see its record as
// committed — it is durably on disk — not report ErrWALBroken for a
// write the next Open would replay.
func (l *WAL) closeFile() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.stopFlusher()
	var err error
	if !l.broken {
		err = l.w.Flush()
	}
	if l.f != nil {
		serr := l.f.Sync()
		if err == nil && !l.broken {
			err = serr
		}
		if err == nil && serr == nil && !l.broken && l.records > l.durable {
			l.durable = l.records
			if l.syncCond != nil {
				l.syncCond.Broadcast()
			}
		}
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// Abandon simulates a process crash for tests and crash drills: it drops
// the WAL file handle and the data-directory lock WITHOUT flushing or
// syncing, exactly as the kernel would when the process dies. The DB
// value must not be used afterwards; a subsequent Open(dir) recovers from
// whatever reached the OS.
func (db *DB) Abandon() {
	if db.wal != nil {
		db.wal.mu.Lock()
		if db.wal.f != nil {
			_ = db.wal.f.Close()
			db.wal.f = nil
		}
		db.wal.broken = true // refuse any straggler appends
		db.wal.closed = true
		db.wal.stopFlusher()
		db.wal.mu.Unlock()
	}
	if db.lock != nil {
		_ = db.lock.Close()
		db.lock = nil
	}
}

// StorageStats reports the storage engine's observable state.
func (db *DB) StorageStats() StorageStats {
	st := StorageStats{
		Dir:             db.dir,
		Durable:         db.dir != "",
		TablePartitions: map[string]int{},
	}
	for _, t := range db.tablesSorted() {
		st.Tables++
		st.Rows += t.Len()
		st.TablePartitions[t.Name()] = t.Partitions()
	}
	st.WALFsyncPolicy = FsyncCheckpoint.String()
	if db.wal != nil {
		st.WALRecords = db.wal.Records()
		st.WALBytes = db.wal.Bytes()
		st.WALFsyncPolicy = db.wal.Policy().String()
		st.WALFsyncs, st.WALFsyncBatchedRecords = db.wal.FsyncStats()
	}
	db.statsMu.Lock()
	st.WALSegment = db.walSeq
	st.Checkpoints = db.stats.checkpoints
	st.LastCheckpoint = db.stats.lastCheckpoint
	st.SnapshotBytes = db.stats.snapshotBytes
	// SnapshotGeneration reports the manifest's view (the chain a recovery
	// would apply), not the allocation counter — a failed or no-op
	// checkpoint may consume numbers without chaining a generation.
	st.SnapshotGeneration = db.snapBase
	if n := len(db.snapDeltas); n > 0 {
		st.SnapshotGeneration = db.snapDeltas[n-1]
	}
	st.DeltaChainLength = len(db.snapDeltas)
	st.Compactions = db.stats.compactions
	st.LastCheckpointFull = db.stats.lastFull
	st.LastCheckpointPartitions = db.stats.lastParts
	st.PruneFailures = db.stats.pruneFailures
	st.RecoveredRecords = db.stats.recoveredRecords
	st.RecoveredTruncated = db.stats.recoveredTruncated
	db.statsMu.Unlock()
	return st
}

func (db *DB) currentSeq() int {
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return db.walSeq
}

func (db *DB) setSeq(seq int) {
	db.statsMu.Lock()
	db.walSeq = seq
	db.statsMu.Unlock()
}

// segName formats a WAL segment file name; zero-padded so lexicographic
// order is replay order.
func segName(seq int) string { return fmt.Sprintf("wal-%06d.log", seq) }

// segSeq parses a segment sequence number from its path (0 if malformed).
func segSeq(path string) int {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "wal-")
	base = strings.TrimSuffix(base, ".log")
	n, err := strconv.Atoi(base)
	if err != nil {
		return 0
	}
	return n
}

// walSegments lists the directory's WAL segments in replay order.
func walSegments(fsys vfs.FS, dir string) ([]string, error) {
	matches, err := fsys.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	sort.Slice(matches, func(i, j int) bool { return segSeq(matches[i]) < segSeq(matches[j]) })
	return matches, nil
}

// replaySegment replays one WAL segment onto db with recovery (loose)
// semantics. A record that fails to decode — a torn tail from a crash
// mid-append, or corruption — truncates the file at the last good record
// boundary and reports trunc=true; it never aborts recovery. Errors
// applying a well-formed record (schema drift, disk errors) do abort.
func replaySegment(db *DB, fsys vfs.FS, path string) (applied int, trunc bool, err error) {
	f, err := fsys.OpenRead(path)
	if err != nil {
		return 0, false, err
	}
	cr := &countingReader{r: f}
	br := bufio.NewReaderSize(cr, 1<<16)
	var good int64
	for {
		rec, rerr := readRecord(br)
		if rerr == io.EOF {
			f.Close()
			return applied, false, nil
		}
		if rerr != nil {
			// Torn or corrupt record: cut the log at the last good
			// boundary so the next open sees a clean tail.
			f.Close()
			if terr := fsys.Truncate(path, good); terr != nil {
				return applied, true, terr
			}
			return applied, true, nil
		}
		if aerr := applyRecord(db, rec, true); aerr != nil {
			f.Close()
			return applied, false, aerr
		}
		applied++
		good = cr.n - int64(br.Buffered())
	}
}

// countingReader tracks the bytes handed to the buffered decoder, so the
// last good record boundary can be computed as read - buffered.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
