// Package rdbms implements the embedded relational engine behind the
// SciLens real-time path (paper §3.3, "Data Collection and Storage"). It
// provides typed schemas, partitioned lock-striped heap tables, hash and
// ordered secondary indexes, latch-based transactions with rollback, a
// write-ahead log with replay, a durable incremental-checkpoint lifecycle
// (Open / Checkpoint / Close), and a small typed query layer
// (filter/project/order/aggregate).
//
// Tables are sharded into P partitions by primary-key hash: each stripe
// has its own lock, heap and index shards, so point reads and writes on
// different keys proceed in parallel; ordered range scans merge the
// per-partition skip lists back into one ascending stream under a
// whole-table read barrier. Durability is opt-in via Open(dir): every
// mutation (and DDL statement) appends to the current WAL segment before
// the call returns.
//
// Checkpoints are incremental. Every partition carries a dirty epoch,
// bumped on each mutation landing in that stripe; Checkpoint serialises
// only the partitions dirtied since the previous checkpoint into a new
// numbered snapshot generation (snap-000007/), chained onto the base by a
// MANIFEST that is atomically rewritten — so checkpoint cost follows the
// write rate, not the corpus size. When the delta chain exceeds
// Options.DeltaLimit the checkpoint compacts it into a fresh full base
// and retires the superseded generations. Recovery applies
// manifest → base → deltas → WAL segments; WAL replay tolerates a torn
// tail (truncated at the last good record boundary), but a generation the
// manifest references must exist and apply completely or Open fails with
// ErrManifest — committed data is never silently dropped.
//
// When the WAL fsyncs is a policy (Options.Fsync): FsyncCheckpoint (the
// default) fsyncs only at checkpoint/rotation/close, FsyncIntervalPolicy
// fsyncs on a background cadence bounding the power-loss window, and
// FsyncAlways group-commits — every append parks on a committed-record
// watermark while a single flusher goroutine batches all concurrently
// parked appenders onto one fsync.
//
// The engine is a faithful miniature of what the platform needs from its
// RDBMS: indexed point and range access for the interactive path,
// transactional upserts from the streaming pipeline, and a store that
// survives restarts without losing the corpus the training loop depends
// on.
package rdbms

import (
	"fmt"
	"strconv"
	"time"
)

// Type enumerates column types.
type Type uint8

// Column types.
const (
	// TInt is a 64-bit signed integer.
	TInt Type = iota
	// TFloat is a 64-bit float.
	TFloat
	// TString is a UTF-8 string.
	TString
	// TBool is a boolean.
	TBool
	// TTime is a timestamp with nanosecond precision.
	TTime
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOL"
	case TTime:
		return "TIMESTAMP"
	default:
		return "UNKNOWN"
	}
}

// Value is a dynamically typed cell. The zero Value is NULL.
type Value struct {
	kind    Type
	null    bool
	i       int64
	f       float64
	s       string
	b       bool
	t       time.Time
	present bool // false => NULL
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: TInt, i: v, present: true} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: TFloat, f: v, present: true} }

// String wraps a string.
func String(v string) Value { return Value{kind: TString, s: v, present: true} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{kind: TBool, b: v, present: true} }

// Time wraps a time.Time (stored UTC).
func Time(v time.Time) Value { return Value{kind: TTime, t: v.UTC(), present: true} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return !v.present }

// Kind returns the value's type; meaningless for NULL.
func (v Value) Kind() Type { return v.kind }

// Int returns the integer payload (0 if not an int).
func (v Value) Int() int64 { return v.i }

// Float returns the float payload, converting ints.
func (v Value) Float() float64 {
	if v.kind == TInt {
		return float64(v.i)
	}
	return v.f
}

// Str returns the string payload ("" if not a string).
func (v Value) Str() string { return v.s }

// Bool returns the bool payload (false if not a bool).
func (v Value) Bool() bool { return v.b }

// Time returns the time payload (zero time if not a timestamp).
func (v Value) Time() time.Time { return v.t }

// String renders the value for debugging.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.kind {
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return strconv.Quote(v.s)
	case TBool:
		return strconv.FormatBool(v.b)
	case TTime:
		return v.t.Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// Equal reports deep equality; NULL equals only NULL.
func (v Value) Equal(w Value) bool {
	if v.IsNull() || w.IsNull() {
		return v.IsNull() && w.IsNull()
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case TInt:
		return v.i == w.i
	case TFloat:
		return v.f == w.f
	case TString:
		return v.s == w.s
	case TBool:
		return v.b == w.b
	case TTime:
		return v.t.Equal(w.t)
	}
	return false
}

// Compare orders two values of the same kind: -1, 0, +1. NULL sorts before
// everything. Comparing mismatched kinds returns an error.
func (v Value) Compare(w Value) (int, error) {
	if v.IsNull() || w.IsNull() {
		switch {
		case v.IsNull() && w.IsNull():
			return 0, nil
		case v.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.kind != w.kind {
		return 0, fmt.Errorf("rdbms: comparing %v with %v: %w", v.kind, w.kind, ErrTypeMismatch)
	}
	switch v.kind {
	case TInt:
		return cmpOrdered(v.i, w.i), nil
	case TFloat:
		return cmpOrdered(v.f, w.f), nil
	case TString:
		return cmpOrdered(v.s, w.s), nil
	case TBool:
		vi, wi := 0, 0
		if v.b {
			vi = 1
		}
		if w.b {
			wi = 1
		}
		return cmpOrdered(vi, wi), nil
	case TTime:
		switch {
		case v.t.Before(w.t):
			return -1, nil
		case v.t.After(w.t):
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, ErrTypeMismatch
}

func cmpOrdered[T int | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// hashKey returns a map-key representation of the value for hash indexes.
func (v Value) hashKey() string {
	if v.IsNull() {
		return "\x00null"
	}
	switch v.kind {
	case TInt:
		return "i" + strconv.FormatInt(v.i, 36)
	case TFloat:
		return "f" + strconv.FormatFloat(v.f, 'b', -1, 64)
	case TString:
		return "s" + v.s
	case TBool:
		if v.b {
			return "b1"
		}
		return "b0"
	case TTime:
		return "t" + strconv.FormatInt(v.t.UnixNano(), 36)
	default:
		return "?"
	}
}

// Row is one table row: values in schema column order.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
