package rdbms

import (
	"fmt"
	"sort"
)

// Op is a predicate comparison operator.
type Op uint8

// Predicate operators.
const (
	// Eq matches values equal to the operand.
	Eq Op = iota
	// Ne matches values not equal to the operand.
	Ne
	// Lt matches values less than the operand.
	Lt
	// Le matches values less than or equal to the operand.
	Le
	// Gt matches values greater than the operand.
	Gt
	// Ge matches values greater than or equal to the operand.
	Ge
)

type predicate struct {
	col int
	op  Op
	val Value
}

func (p predicate) matches(r Row) bool {
	v := r[p.col]
	if p.op == Eq {
		return v.Equal(p.val)
	}
	if p.op == Ne {
		return !v.Equal(p.val)
	}
	c, err := v.Compare(p.val)
	if err != nil {
		return false
	}
	switch p.op {
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// Query is a fluent typed query over one table. Build with Table.Query,
// chain Where/OrderBy/Limit, and execute with Rows, Count or Aggregate.
// The executor uses a secondary index for the first Eq predicate on an
// indexed column; everything else falls back to a heap scan.
type Query struct {
	t       *Table
	preds   []predicate
	orderBy int
	desc    bool
	ordered bool
	limit   int
	err     error
}

// Query starts a query on the table.
func (t *Table) Query() *Query { return &Query{t: t, limit: -1} }

// Where adds a predicate; unknown columns poison the query (reported at
// execution).
func (q *Query) Where(col string, op Op, val Value) *Query {
	if q.err != nil {
		return q
	}
	ci, err := q.t.schema.ColIndex(col)
	if err != nil {
		q.err = err
		return q
	}
	q.preds = append(q.preds, predicate{col: ci, op: op, val: val})
	return q
}

// OrderBy sorts results by the named column.
func (q *Query) OrderBy(col string, desc bool) *Query {
	if q.err != nil {
		return q
	}
	ci, err := q.t.schema.ColIndex(col)
	if err != nil {
		q.err = err
		return q
	}
	q.orderBy = ci
	q.desc = desc
	q.ordered = true
	return q
}

// Limit caps the number of returned rows (after ordering).
func (q *Query) Limit(n int) *Query {
	q.limit = n
	return q
}

// Rows executes the query and returns matching rows.
func (q *Query) Rows() ([]Row, error) {
	if q.err != nil {
		return nil, q.err
	}
	var out []Row
	collect := func(r Row) bool {
		for _, p := range q.preds {
			if !p.matches(r) {
				return true // keep scanning
			}
		}
		out = append(out, r)
		// Early exit only when no ordering requested.
		if !q.ordered && q.limit >= 0 && len(out) >= q.limit {
			return false
		}
		return true
	}

	if idx, pred := q.pickIndex(); idx != "" {
		rows, err := q.t.LookupEq(idx, pred.val)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			if !collect(r) {
				break
			}
		}
	} else if col, lo, hi := q.pickRange(); col != "" {
		// Bounds are inclusive and every predicate is re-checked in
		// collect, so strict (Lt/Gt) operators only over-scan the
		// boundary values.
		if err := q.t.Range(col, lo, hi, collect); err != nil {
			return nil, err
		}
	} else {
		q.t.Scan(collect)
	}

	if q.ordered {
		ob := q.orderBy
		sort.SliceStable(out, func(i, j int) bool {
			c, err := out[i][ob].Compare(out[j][ob])
			if err != nil {
				return false
			}
			if q.desc {
				return c > 0
			}
			return c < 0
		})
	}
	if q.limit >= 0 && len(out) > q.limit {
		out = out[:q.limit]
	}
	return out, nil
}

// pickIndex returns the column name and predicate of the first Eq predicate
// on an indexed column, or "".
func (q *Query) pickIndex() (string, predicate) {
	for _, p := range q.preds {
		if p.op != Eq {
			continue
		}
		name := q.t.schema.Cols[p.col].Name
		if q.t.HasIndex(name) {
			return name, p
		}
	}
	return "", predicate{}
}

// pickRange returns the column name and inclusive bounds of the best
// range-scannable predicate set: inequality predicates on a column with an
// ordered index. A column bounded on both sides beats a half-open one.
func (q *Query) pickRange() (string, *Value, *Value) {
	type bounds struct{ lo, hi *Value }
	perCol := map[int]*bounds{}
	order := []int{}
	for _, p := range q.preds {
		var lo, hi *Value
		switch p.op {
		case Gt, Ge:
			v := p.val
			lo = &v
		case Lt, Le:
			v := p.val
			hi = &v
		default:
			continue
		}
		name := q.t.schema.Cols[p.col].Name
		if kind, ok := q.t.IndexKindOf(name); !ok || kind != OrderedIndex {
			continue
		}
		b, ok := perCol[p.col]
		if !ok {
			b = &bounds{}
			perCol[p.col] = b
			order = append(order, p.col)
		}
		// Tighten: keep the largest lo and the smallest hi.
		if lo != nil && (b.lo == nil || mustCompare(*lo, *b.lo) > 0) {
			b.lo = lo
		}
		if hi != nil && (b.hi == nil || mustCompare(*hi, *b.hi) < 0) {
			b.hi = hi
		}
	}
	best := -1
	for _, ci := range order {
		b := perCol[ci]
		if b.lo != nil && b.hi != nil {
			best = ci
			break
		}
		if best < 0 {
			best = ci
		}
	}
	if best < 0 {
		return "", nil, nil
	}
	b := perCol[best]
	return q.t.schema.Cols[best].Name, b.lo, b.hi
}

// mustCompare compares two values of the same column type; incomparable
// pairs (prevented by schema validation) order as equal.
func mustCompare(a, b Value) int {
	c, err := a.Compare(b)
	if err != nil {
		return 0
	}
	return c
}

// Explain reports the access path the executor would choose: "index(col)",
// "range(col)" or "scan". It mirrors the planning in Rows exactly.
func (q *Query) Explain() string {
	if q.err != nil {
		return "error"
	}
	if idx, _ := q.pickIndex(); idx != "" {
		return "index(" + idx + ")"
	}
	if col, _, _ := q.pickRange(); col != "" {
		return "range(" + col + ")"
	}
	return "scan"
}

// Count executes the query and returns the number of matches.
func (q *Query) Count() (int, error) {
	rows, err := q.Rows()
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

// AggregateResult holds one aggregation group.
type AggregateResult struct {
	// Key is the group key (the grouped column's value).
	Key Value
	// Count is the number of rows in the group.
	Count int
	// Sum is the sum of the aggregated column over the group (numeric
	// columns only; NULLs skipped).
	Sum float64
}

// Avg returns Sum / Count (0 for empty groups).
func (a AggregateResult) Avg() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// GroupBy executes the query grouping by groupCol, summing sumCol (pass ""
// to only count). Results are ordered by group key ascending.
func (q *Query) GroupBy(groupCol, sumCol string) ([]AggregateResult, error) {
	if q.err != nil {
		return nil, q.err
	}
	gi, err := q.t.schema.ColIndex(groupCol)
	if err != nil {
		return nil, err
	}
	si := -1
	if sumCol != "" {
		si, err = q.t.schema.ColIndex(sumCol)
		if err != nil {
			return nil, err
		}
		switch q.t.schema.Cols[si].Type {
		case TInt, TFloat:
		default:
			return nil, fmt.Errorf("sum column %q not numeric: %w", sumCol, ErrTypeMismatch)
		}
	}
	rows, err := q.Rows()
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*AggregateResult)
	for _, r := range rows {
		key := r[gi]
		hk := key.hashKey()
		g, ok := groups[hk]
		if !ok {
			g = &AggregateResult{Key: key}
			groups[hk] = g
		}
		g.Count++
		if si >= 0 && !r[si].IsNull() {
			g.Sum += r[si].Float()
		}
	}
	out := make([]AggregateResult, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		c, err := out[i].Key.Compare(out[j].Key)
		return err == nil && c < 0
	})
	return out, nil
}
