package rdbms

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func articleSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Column{
		{Name: "id", Type: TInt},
		{Name: "outlet", Type: TString, NotNull: true},
		{Name: "title", Type: TString},
		{Name: "score", Type: TFloat},
		{Name: "published", Type: TTime},
		{Name: "reviewed", Type: TBool},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func articleRow(id int64, outlet, title string, score float64) Row {
	return Row{
		Int(id), String(outlet), String(title), Float(score),
		Time(time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC).Add(time.Duration(id) * time.Hour)),
		Bool(id%2 == 0),
	}
}

func newArticleTable(t *testing.T) *Table {
	t.Helper()
	db := NewDB()
	tbl, err := db.CreateTable("articles", articleSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// --- Schema ---

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(nil, "id"); !errors.Is(err, ErrSchema) {
		t.Errorf("empty cols: %v", err)
	}
	if _, err := NewSchema([]Column{{Name: "a", Type: TInt}}, "missing"); !errors.Is(err, ErrSchema) {
		t.Errorf("missing pk: %v", err)
	}
	if _, err := NewSchema([]Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}, "a"); !errors.Is(err, ErrSchema) {
		t.Errorf("duplicate col: %v", err)
	}
	if _, err := NewSchema([]Column{{Name: "", Type: TInt}}, ""); !errors.Is(err, ErrSchema) {
		t.Errorf("unnamed col: %v", err)
	}
	s, err := NewSchema([]Column{{Name: "a", Type: TInt}}, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cols[s.PK].NotNull {
		t.Error("pk should be forced NOT NULL")
	}
}

func TestSchemaValidateRows(t *testing.T) {
	s := articleSchema(t)
	ok := articleRow(1, "o", "t", 0.5)
	if err := s.Validate(ok); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate(ok[:2]); !errors.Is(err, ErrSchema) {
		t.Errorf("arity: %v", err)
	}
	bad := ok.Clone()
	bad[3] = String("not a float")
	if err := s.Validate(bad); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("type: %v", err)
	}
	null := ok.Clone()
	null[1] = Null() // outlet NOT NULL
	if err := s.Validate(null); !errors.Is(err, ErrSchema) {
		t.Errorf("not null: %v", err)
	}
	nullable := ok.Clone()
	nullable[2] = Null() // title nullable
	if err := s.Validate(nullable); err != nil {
		t.Errorf("nullable: %v", err)
	}
}

// --- Values ---

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0)), -1},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if _, err := Int(1).Compare(String("x")); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("mixed compare: %v", err)
	}
}

func TestValueStringRendering(t *testing.T) {
	if Null().String() != "NULL" {
		t.Error("null render")
	}
	if Int(42).String() != "42" {
		t.Error("int render")
	}
	if String("x").String() != `"x"` {
		t.Error("string render")
	}
	if Bool(true).String() != "true" {
		t.Error("bool render")
	}
	if Type(99).String() != "UNKNOWN" {
		t.Error("unknown type name")
	}
}

// --- Table CRUD ---

func TestInsertGetUpdateDelete(t *testing.T) {
	tbl := newArticleTable(t)
	if _, err := tbl.Insert(articleRow(1, "outlet-a", "Title", 0.7)); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if got[2].Str() != "Title" {
		t.Errorf("title: %v", got[2])
	}
	// Duplicate pk.
	if _, err := tbl.Insert(articleRow(1, "o", "t", 0)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
	// Update.
	upd := articleRow(1, "outlet-a", "New Title", 0.9)
	if err := tbl.Update(Int(1), upd); err != nil {
		t.Fatal(err)
	}
	got, _ = tbl.Get(Int(1))
	if got[2].Str() != "New Title" || got[3].Float() != 0.9 {
		t.Errorf("after update: %v", got)
	}
	// Delete.
	if err := tbl.Delete(Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(Int(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("after delete: %v", err)
	}
	if err := tbl.Delete(Int(1)); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if tbl.Len() != 0 {
		t.Errorf("len: %d", tbl.Len())
	}
}

func TestInsertReturnedRowIsCopy(t *testing.T) {
	tbl := newArticleTable(t)
	row := articleRow(1, "o", "t", 0.5)
	tbl.Insert(row)
	row[2] = String("mutated")
	got, _ := tbl.Get(Int(1))
	if got[2].Str() != "t" {
		t.Error("insert did not copy the row")
	}
	got[2] = String("mutated2")
	again, _ := tbl.Get(Int(1))
	if again[2].Str() != "t" {
		t.Error("get did not copy the row")
	}
}

func TestUpsert(t *testing.T) {
	tbl := newArticleTable(t)
	if err := tbl.Upsert(articleRow(1, "o", "v1", 0.1)); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Upsert(articleRow(1, "o", "v2", 0.2)); err != nil {
		t.Fatal(err)
	}
	got, _ := tbl.Get(Int(1))
	if got[2].Str() != "v2" {
		t.Errorf("upsert: %v", got[2])
	}
	if tbl.Len() != 1 {
		t.Errorf("len: %d", tbl.Len())
	}
}

func TestUpdatePKMove(t *testing.T) {
	tbl := newArticleTable(t)
	tbl.Insert(articleRow(1, "o", "t", 0.5))
	tbl.Insert(articleRow(2, "o", "other", 0.5))
	// Move pk 1 -> 3.
	moved := articleRow(3, "o", "t", 0.5)
	if err := tbl.Update(Int(1), moved); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(Int(1)); !errors.Is(err, ErrNotFound) {
		t.Error("old pk should be gone")
	}
	if _, err := tbl.Get(Int(3)); err != nil {
		t.Errorf("new pk: %v", err)
	}
	// Move onto an existing pk must fail.
	clash := articleRow(2, "o", "x", 0.5)
	if err := tbl.Update(Int(3), clash); !errors.Is(err, ErrDuplicate) {
		t.Errorf("pk clash: %v", err)
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	tbl := newArticleTable(t)
	tbl.Insert(articleRow(1, "o", "a", 0))
	tbl.Insert(articleRow(2, "o", "b", 0))
	tbl.Delete(Int(1))
	tbl.Insert(articleRow(3, "o", "c", 0))
	if tbl.Len() != 2 {
		t.Errorf("len: %d", tbl.Len())
	}
	count := 0
	tbl.Scan(func(r Row) bool { count++; return true })
	if count != 2 {
		t.Errorf("scan count: %d", count)
	}
}

// --- Indexes ---

func TestHashIndexLookup(t *testing.T) {
	tbl := newArticleTable(t)
	for i := int64(1); i <= 10; i++ {
		outlet := "low"
		if i%2 == 0 {
			outlet = "high"
		}
		tbl.Insert(articleRow(i, outlet, "t", 0))
	}
	if err := tbl.CreateIndex("outlet", HashIndex); err != nil {
		t.Fatal(err)
	}
	rows, err := tbl.LookupEq("outlet", String("high"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Errorf("high rows: %d", len(rows))
	}
	// Index follows updates and deletes.
	tbl.Delete(Int(2))
	rows, _ = tbl.LookupEq("outlet", String("high"))
	if len(rows) != 4 {
		t.Errorf("after delete: %d", len(rows))
	}
	upd := articleRow(4, "low", "t", 0)
	tbl.Update(Int(4), upd)
	rows, _ = tbl.LookupEq("outlet", String("high"))
	if len(rows) != 3 {
		t.Errorf("after update: %d", len(rows))
	}
	rows, _ = tbl.LookupEq("outlet", String("low"))
	if len(rows) != 6 {
		t.Errorf("low rows: %d", len(rows))
	}
}

func TestCreateIndexErrors(t *testing.T) {
	tbl := newArticleTable(t)
	if err := tbl.CreateIndex("nope", HashIndex); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing col: %v", err)
	}
	tbl.CreateIndex("outlet", HashIndex)
	if err := tbl.CreateIndex("outlet", OrderedIndex); !errors.Is(err, ErrExists) {
		t.Errorf("dup index: %v", err)
	}
	if _, err := tbl.LookupEq("title", String("x")); !errors.Is(err, ErrNotFound) {
		t.Errorf("unindexed lookup: %v", err)
	}
}

func TestCreateIndexBackfillsExistingRows(t *testing.T) {
	tbl := newArticleTable(t)
	for i := int64(1); i <= 5; i++ {
		tbl.Insert(articleRow(i, "o", "t", float64(i)))
	}
	tbl.CreateIndex("score", OrderedIndex)
	lo, hi := Float(2), Float(4)
	var seen []float64
	tbl.Range("score", &lo, &hi, func(r Row) bool {
		seen = append(seen, r[3].Float())
		return true
	})
	if len(seen) != 3 || seen[0] != 2 || seen[2] != 4 {
		t.Errorf("range: %v", seen)
	}
}

func TestOrderedIndexRange(t *testing.T) {
	tbl := newArticleTable(t)
	tbl.CreateIndex("published", OrderedIndex)
	base := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	for i := int64(0); i < 60; i++ {
		tbl.Insert(Row{
			Int(i), String("o"), String("t"), Float(0),
			Time(base.AddDate(0, 0, int(i))), Bool(false),
		})
	}
	lo := Time(base.AddDate(0, 0, 10))
	hi := Time(base.AddDate(0, 0, 19))
	var got []int64
	err := tbl.Range("published", &lo, &hi, func(r Row) bool {
		got = append(got, r[0].Int())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range size: %d (%v)", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not ascending: %v", got)
		}
	}
	// Open-ended ranges.
	var all []int64
	tbl.Range("published", nil, nil, func(r Row) bool {
		all = append(all, r[0].Int())
		return true
	})
	if len(all) != 60 {
		t.Errorf("open range: %d", len(all))
	}
	// Early stop.
	n := 0
	tbl.Range("published", nil, nil, func(r Row) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop: %d", n)
	}
	// Range on hash index fails.
	tbl.CreateIndex("outlet", HashIndex)
	if err := tbl.Range("outlet", nil, nil, func(Row) bool { return true }); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("hash range: %v", err)
	}
}

func TestOrderedIndexDuplicateValues(t *testing.T) {
	tbl := newArticleTable(t)
	tbl.CreateIndex("score", OrderedIndex)
	for i := int64(0); i < 20; i++ {
		tbl.Insert(articleRow(i, "o", "t", float64(i%4)))
	}
	rows, err := tbl.LookupEq("score", Float(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Errorf("duplicates: %d", len(rows))
	}
	// Delete one of them; lookup shrinks.
	tbl.Delete(rows[0][0])
	rows, _ = tbl.LookupEq("score", Float(2))
	if len(rows) != 4 {
		t.Errorf("after delete: %d", len(rows))
	}
}

// --- DB ---

func TestDBTableLifecycle(t *testing.T) {
	db := NewDB()
	s := articleSchema(t)
	if _, err := db.CreateTable("a", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", s); !errors.Is(err, ErrExists) {
		t.Errorf("dup table: %v", err)
	}
	if _, err := db.CreateTable("", s); !errors.Is(err, ErrSchema) {
		t.Errorf("empty name: %v", err)
	}
	if _, err := db.Table("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing table: %v", err)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double drop: %v", err)
	}
	if len(db.TableNames()) != 0 {
		t.Errorf("names: %v", db.TableNames())
	}
}

// --- Transactions ---

func TestTxnCommit(t *testing.T) {
	db := NewDB()
	db.CreateTable("articles", articleSchema(t))
	tx := db.Begin()
	if err := tx.Insert("articles", articleRow(1, "o", "t", 0)); err != nil {
		t.Fatal(err)
	}
	if tx.Pending() != 1 {
		t.Errorf("pending: %d", tx.Pending())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("articles")
	if tbl.Len() != 1 {
		t.Errorf("committed rows: %d", tbl.Len())
	}
	if err := tx.Insert("articles", articleRow(2, "o", "t", 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("closed txn: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("double commit: %v", err)
	}
}

func TestTxnRollback(t *testing.T) {
	db := NewDB()
	db.CreateTable("articles", articleSchema(t))
	tbl, _ := db.Table("articles")
	tbl.Insert(articleRow(1, "o", "original", 0.5))
	tbl.Insert(articleRow(2, "o", "victim", 0.5))

	tx := db.Begin()
	tx.Insert("articles", articleRow(3, "o", "new", 0))
	tx.Update("articles", Int(1), articleRow(1, "o", "changed", 0.9))
	tx.Delete("articles", Int(2))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("rows after rollback: %d", tbl.Len())
	}
	if _, err := tbl.Get(Int(3)); !errors.Is(err, ErrNotFound) {
		t.Error("insert not rolled back")
	}
	got, _ := tbl.Get(Int(1))
	if got[2].Str() != "original" {
		t.Errorf("update not rolled back: %v", got[2])
	}
	if _, err := tbl.Get(Int(2)); err != nil {
		t.Errorf("delete not rolled back: %v", err)
	}
}

func TestTxnRollbackPKMove(t *testing.T) {
	db := NewDB()
	db.CreateTable("articles", articleSchema(t))
	tbl, _ := db.Table("articles")
	tbl.Insert(articleRow(1, "o", "t", 0.5))
	tx := db.Begin()
	tx.Update("articles", Int(1), articleRow(9, "o", "t", 0.5))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(Int(1)); err != nil {
		t.Errorf("pk move not rolled back: %v", err)
	}
	if _, err := tbl.Get(Int(9)); !errors.Is(err, ErrNotFound) {
		t.Error("moved pk lingers")
	}
}

func TestTxnErrorsPropagate(t *testing.T) {
	db := NewDB()
	db.CreateTable("articles", articleSchema(t))
	tx := db.Begin()
	if err := tx.Insert("missing", articleRow(1, "o", "t", 0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing table: %v", err)
	}
	if err := tx.Update("articles", Int(77), articleRow(77, "o", "t", 0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing row: %v", err)
	}
	if err := tx.Delete("articles", Int(77)); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing delete: %v", err)
	}
	// Failed ops left nothing to undo.
	if tx.Pending() != 0 {
		t.Errorf("pending: %d", tx.Pending())
	}
}

// --- Concurrency ---

func TestConcurrentInsertsAndReads(t *testing.T) {
	tbl := newArticleTable(t)
	tbl.CreateIndex("outlet", HashIndex)
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := int64(w*perWorker + i)
				if _, err := tbl.Insert(articleRow(id, fmt.Sprintf("outlet-%d", w), "t", 0)); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
				if i%10 == 0 {
					tbl.Scan(func(Row) bool { return false })
					tbl.LookupEq("outlet", String("outlet-0"))
				}
			}
		}(w)
	}
	wg.Wait()
	if tbl.Len() != workers*perWorker {
		t.Errorf("rows: %d want %d", tbl.Len(), workers*perWorker)
	}
}

// --- Queries ---

func populatedTable(t *testing.T) *Table {
	t.Helper()
	tbl := newArticleTable(t)
	tbl.CreateIndex("outlet", HashIndex)
	outlets := []string{"high-a", "high-b", "low-a", "low-b"}
	for i := int64(0); i < 40; i++ {
		tbl.Insert(articleRow(i, outlets[i%4], fmt.Sprintf("article %d", i), float64(i)/40))
	}
	return tbl
}

func TestQueryWhereRows(t *testing.T) {
	tbl := populatedTable(t)
	rows, err := tbl.Query().Where("outlet", Eq, String("high-a")).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("rows: %d", len(rows))
	}
	rows, err = tbl.Query().
		Where("outlet", Eq, String("high-a")).
		Where("score", Ge, Float(0.5)).
		Rows()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[3].Float() < 0.5 {
			t.Errorf("predicate violated: %v", r[3])
		}
	}
}

func TestQueryOps(t *testing.T) {
	tbl := populatedTable(t)
	cases := []struct {
		op   Op
		val  float64
		want func(float64) bool
	}{
		{Lt, 0.5, func(x float64) bool { return x < 0.5 }},
		{Le, 0.5, func(x float64) bool { return x <= 0.5 }},
		{Gt, 0.5, func(x float64) bool { return x > 0.5 }},
		{Ge, 0.5, func(x float64) bool { return x >= 0.5 }},
		{Ne, 0.0, func(x float64) bool { return x != 0.0 }},
	}
	for _, c := range cases {
		rows, err := tbl.Query().Where("score", c.op, Float(c.val)).Rows()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if !c.want(r[3].Float()) {
				t.Errorf("op %d: %v leaked through", c.op, r[3])
			}
		}
	}
}

func TestQueryOrderLimit(t *testing.T) {
	tbl := populatedTable(t)
	rows, err := tbl.Query().OrderBy("score", true).Limit(5).Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("limit: %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][3].Float() > rows[i-1][3].Float() {
			t.Errorf("descending order violated")
		}
	}
	if rows[0][3].Float() != float64(39)/40 {
		t.Errorf("top score: %v", rows[0][3])
	}
}

func TestQueryUnknownColumn(t *testing.T) {
	tbl := populatedTable(t)
	if _, err := tbl.Query().Where("nope", Eq, Int(1)).Rows(); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown where: %v", err)
	}
	if _, err := tbl.Query().OrderBy("nope", false).Rows(); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown order: %v", err)
	}
}

func TestQueryCountAndGroupBy(t *testing.T) {
	tbl := populatedTable(t)
	n, err := tbl.Query().Where("outlet", Eq, String("low-a")).Count()
	if err != nil || n != 10 {
		t.Errorf("count: %d %v", n, err)
	}
	groups, err := tbl.Query().GroupBy("outlet", "score")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups: %d", len(groups))
	}
	totalCount := 0
	for _, g := range groups {
		totalCount += g.Count
		if g.Avg() <= 0 {
			t.Errorf("group %v avg: %v", g.Key, g.Avg())
		}
	}
	if totalCount != 40 {
		t.Errorf("group counts: %d", totalCount)
	}
	// Count-only grouping.
	groups, err = tbl.Query().GroupBy("reviewed", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Errorf("bool groups: %d", len(groups))
	}
	// Non-numeric sum column.
	if _, err := tbl.Query().GroupBy("outlet", "title"); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("non-numeric sum: %v", err)
	}
}

func TestQueryUsesIndex(t *testing.T) {
	// Not directly observable; verify it returns identical results with
	// and without index.
	tbl := newArticleTable(t)
	for i := int64(0); i < 30; i++ {
		tbl.Insert(articleRow(i, fmt.Sprintf("o%d", i%3), "t", 0))
	}
	noIdx, _ := tbl.Query().Where("outlet", Eq, String("o1")).Rows()
	tbl.CreateIndex("outlet", HashIndex)
	withIdx, _ := tbl.Query().Where("outlet", Eq, String("o1")).Rows()
	if len(noIdx) != len(withIdx) {
		t.Errorf("index changed results: %d vs %d", len(noIdx), len(withIdx))
	}
}

// --- Mutate ---

func TestMutateBasics(t *testing.T) {
	tbl := newArticleTable(t)
	if _, err := tbl.Insert(articleRow(1, "o1", "t1", 0.5)); err != nil {
		t.Fatal(err)
	}
	// Transform in place.
	if err := tbl.Mutate(Int(1), func(r Row) (Row, error) {
		r[3] = Float(0.9)
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Get(Int(1))
	if err != nil || got[3].Float() != 0.9 {
		t.Fatalf("mutated row: %v %v", got, err)
	}
	// fn error aborts without writing and is returned unwrapped.
	sentinel := errors.New("skip")
	if err := tbl.Mutate(Int(1), func(Row) (Row, error) { return nil, sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("fn error: %v", err)
	}
	got, _ = tbl.Get(Int(1))
	if got[3].Float() != 0.9 {
		t.Error("aborted mutate must not write")
	}
	// Unknown pk.
	if err := tbl.Mutate(Int(99), func(r Row) (Row, error) { return r, nil }); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing pk: %v", err)
	}
	// Schema violations are rejected.
	if err := tbl.Mutate(Int(1), func(r Row) (Row, error) {
		r[1] = Value{} // outlet is NOT NULL
		return r, nil
	}); err == nil {
		t.Error("schema violation should fail")
	}
}

func TestMutateReceivesClone(t *testing.T) {
	tbl := newArticleTable(t)
	if _, err := tbl.Insert(articleRow(1, "o1", "t1", 0.5)); err != nil {
		t.Fatal(err)
	}
	var captured Row
	if err := tbl.Mutate(Int(1), func(r Row) (Row, error) {
		captured = r
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Mutating the captured row after the call must not reach the heap
	// (Mutate handed us a clone, and updateLocked clones again on write).
	captured[3] = Float(-1)
	got, _ := tbl.Get(Int(1))
	if got[3].Float() == -1 {
		t.Error("retained row aliases table heap")
	}
}

// TestMutateAtomicIncrements hammers one row with concurrent increments:
// with the read-modify-write under one lock acquisition no update may be
// lost (the failure mode of a separate Get + Update pair).
func TestMutateAtomicIncrements(t *testing.T) {
	tbl := newArticleTable(t)
	if _, err := tbl.Insert(articleRow(1, "o1", "t1", 0)); err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := tbl.Mutate(Int(1), func(r Row) (Row, error) {
					r[3] = Float(r[3].Float() + 1)
					return r, nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := tbl.Get(Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := float64(goroutines * perG); got[3].Float() != want {
		t.Errorf("lost updates: got %v want %v", got[3].Float(), want)
	}
}
