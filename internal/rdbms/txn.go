package rdbms

import "fmt"

// undoOp records how to reverse one applied mutation.
type undoOp struct {
	table *Table
	// kind: 0 = undo insert (delete pk), 1 = undo update (restore old row
	// under old pk), 2 = undo delete (re-insert old row).
	kind int
	pk   Value
	old  Row
}

// Txn is a database transaction. Operations apply immediately to the
// underlying tables; Rollback reverses them in LIFO order via the undo
// log. Commit seals the transaction (and marks the WAL).
//
// Txn is not safe for concurrent use by multiple goroutines.
type Txn struct {
	db     *DB
	undo   []undoOp
	closed bool
}

// Insert adds a row to the named table within the transaction.
func (tx *Txn) Insert(table string, r Row) error {
	if tx.closed {
		return ErrClosed
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	if _, err := t.Insert(r); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: t, kind: 0, pk: r[t.schema.PK]})
	return nil
}

// Update replaces a row within the transaction.
func (tx *Txn) Update(table string, pk Value, r Row) error {
	if tx.closed {
		return ErrClosed
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	old, err := t.Get(pk)
	if err != nil {
		return err
	}
	if err := t.Update(pk, r); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: t, kind: 1, pk: r[t.schema.PK], old: old})
	return nil
}

// Delete removes a row within the transaction.
func (tx *Txn) Delete(table string, pk Value) error {
	if tx.closed {
		return ErrClosed
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	old, err := t.Get(pk)
	if err != nil {
		return err
	}
	if err := t.Delete(pk); err != nil {
		return err
	}
	tx.undo = append(tx.undo, undoOp{table: t, kind: 2, pk: pk, old: old})
	return nil
}

// Commit seals the transaction. Further operations fail with ErrClosed.
func (tx *Txn) Commit() error {
	if tx.closed {
		return ErrClosed
	}
	tx.closed = true
	var err error
	if tx.db.wal != nil && len(tx.undo) > 0 {
		err = tx.db.wal.append(walRecord{Op: walCommit})
	}
	tx.undo = nil
	return err
}

// Rollback undoes every operation of the transaction in reverse order.
func (tx *Txn) Rollback() error {
	if tx.closed {
		return ErrClosed
	}
	tx.closed = true
	for i := len(tx.undo) - 1; i >= 0; i-- {
		op := tx.undo[i]
		var err error
		switch op.kind {
		case 0:
			err = op.table.Delete(op.pk)
		case 1:
			// Restore under the *new* pk (op.pk), moving back to old pk.
			err = op.table.Update(op.pk, op.old)
		case 2:
			_, err = op.table.Insert(op.old)
		}
		if err != nil {
			return fmt.Errorf("rollback step %d: %w", i, err)
		}
	}
	tx.undo = nil
	return nil
}

// Pending returns the number of operations awaiting commit/rollback.
func (tx *Txn) Pending() int { return len(tx.undo) }
