package rdbms

import (
	"fmt"
	"sync"
)

// DB is a named collection of tables plus an optional write-ahead log.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	wal    *WAL
}

// NewDB creates an empty database without a WAL.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// NewDBWithWAL creates a database whose mutations are appended to wal.
func NewDBWithWAL(wal *WAL) *DB {
	db := NewDB()
	db.wal = wal
	return db
}

// CreateTable adds a table with the given schema.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("empty table name: %w", ErrSchema)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("table %q: %w", name, ErrExists)
	}
	t := &Table{
		name:    name,
		schema:  schema,
		pkIdx:   newHashIdx(),
		indexes: make(map[string]index),
		wal:     db.wal,
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("table %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// DropTable removes the named table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("table %q: %w", name, ErrNotFound)
	}
	delete(db.tables, name)
	return nil
}

// TableNames returns the table names (unordered).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// Begin starts a transaction. SciLens transactions are latch-based:
// the transaction takes no locks until each operation executes, operations
// apply immediately, and Rollback undoes them via the undo log. This gives
// atomicity for the single-writer ingestion path, which is what the
// platform needs (readers are never blocked for the whole transaction).
func (db *DB) Begin() *Txn {
	return &Txn{db: db}
}
