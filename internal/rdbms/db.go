package rdbms

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/rdbms/vfs"
)

// Options configures a database.
type Options struct {
	// Partitions is the lock-stripe count for newly created tables
	// (default DefaultPartitions; 1 degenerates to the historic
	// single-lock table).
	Partitions int
	// WAL, when set, receives every table mutation and DDL statement.
	WAL *WAL
	// Fsync selects when durable databases fsync the WAL (default
	// FsyncCheckpoint: only at checkpoint, rotation and close). See
	// FsyncPolicy for the interval and group-commit variants.
	Fsync FsyncPolicy
	// FsyncInterval is the flush cadence under FsyncIntervalPolicy
	// (default DefaultFsyncInterval).
	FsyncInterval time.Duration
	// DeltaLimit bounds the incremental-checkpoint delta chain: when a
	// checkpoint would make the chain longer than this, it writes a full
	// base generation instead and prunes the old chain (default
	// DefaultDeltaLimit; negative forces every checkpoint to be full).
	DeltaLimit int
	// FS is the filesystem durable databases perform their I/O through
	// (default the real OS). Tests substitute vfs.Mem / vfs.Fault to
	// exercise crash and fault paths without a disk.
	FS vfs.FS
}

// DefaultDeltaLimit is the delta-chain bound when Options do not name one:
// after this many delta generations, the next checkpoint compacts the
// chain into a fresh base.
const DefaultDeltaLimit = 8

// DB is a named collection of partitioned tables plus an optional
// write-ahead log and, when opened with Open, a durable home directory
// with a checkpoint cycle (see durable.go).
type DB struct {
	mu         sync.RWMutex
	tables     map[string]*Table
	wal        *WAL
	partitions int

	// Durable state (zero when the DB is purely in-memory).
	dir     string
	fs      vfs.FS    // filesystem all durable I/O goes through
	lock    io.Closer // flock on <dir>/LOCK, held for the DB's lifetime
	walSeq  int
	ckptMu  sync.Mutex // serialises checkpoints
	statsMu sync.Mutex
	stats   durableStats

	// Incremental-checkpoint state (guarded by statsMu; mutated only under
	// ckptMu during checkpoints).
	deltaLimit int   // delta-chain bound before compaction
	snapBase   int   // base generation number (0 = none yet)
	snapDeltas []int // delta generation numbers, chain order
	snapGen    int   // highest generation number ever allocated

	// Drop bookkeeping (guarded by statsMu): dropEpoch counts DropTable
	// calls, handledDropEpoch the drops captured by a FULL generation.
	// While they differ, a delta checkpoint could let the WAL floor pass
	// the drop record while chained generations still carry the dropped
	// table — recovery would resurrect it — so checkpoints compact until
	// the drop is folded into a base.
	dropEpoch        int
	handledDropEpoch int

	// Replication holds (guarded by replMu): per-follower pins that stop
	// the checkpoint prune from deleting WAL segments or snapshot
	// generations a registered replication cursor still needs (repl.go).
	replMu   sync.Mutex
	replHold map[string]*replHold
}

// NewDB creates an empty in-memory database without a WAL.
func NewDB() *DB { return NewDBWithOptions(Options{}) }

// NewDBWithOptions creates an empty database with the given options.
func NewDBWithOptions(o Options) *DB {
	if o.Partitions <= 0 {
		o.Partitions = DefaultPartitions
	}
	return &DB{
		tables:     make(map[string]*Table),
		wal:        o.WAL,
		partitions: o.Partitions,
	}
}

// NewDBWithWAL creates a database whose mutations are appended to wal.
func NewDBWithWAL(wal *WAL) *DB { return NewDBWithOptions(Options{WAL: wal}) }

// CreateTable adds a table with the given schema and the database's
// default partition count.
func (db *DB) CreateTable(name string, schema *Schema) (*Table, error) {
	return db.CreateTablePartitioned(name, schema, db.partitions)
}

// CreateTablePartitioned adds a table with an explicit lock-stripe count
// (<= 0 means the database default).
func (db *DB) CreateTablePartitioned(name string, schema *Schema, parts int) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("empty table name: %w", ErrSchema)
	}
	if parts <= 0 {
		parts = db.partitions
	}
	if parts > MaxPartitions {
		parts = MaxPartitions // keep the logged DDL within recovery's bounds
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("table %q: %w", name, ErrExists)
	}
	// Write-ahead: the DDL record must land before the table exists.
	if db.wal != nil {
		if err := db.wal.append(walRecord{Op: walCreateTable, Table: name, Cols: schema.Cols, PKName: schema.Cols[schema.PK].Name, Parts: parts}); err != nil {
			return nil, err
		}
	}
	t := newTable(name, schema, parts, db.wal)
	db.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("table %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// DropTable removes the named table. The drop is WAL-logged write-ahead
// like every other DDL statement, so a recovery replaying the log does not
// resurrect the table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("table %q: %w", name, ErrNotFound)
	}
	if db.wal != nil {
		if err := db.wal.append(walRecord{Op: walDropTable, Table: name}); err != nil {
			return err
		}
	}
	delete(db.tables, name)
	db.statsMu.Lock()
	db.dropEpoch++
	db.statsMu.Unlock()
	return nil
}

// TableNames returns the table names (unordered).
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// tablesSorted returns the tables in name order (deterministic snapshots).
func (db *DB) tablesSorted() []*Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Table, 0, len(names))
	for _, n := range names {
		out = append(out, db.tables[n])
	}
	return out
}

// attachWAL wires the WAL into the database and every existing table —
// used by Open after recovery replay, so the replay itself is not
// re-logged.
func (db *DB) attachWAL(wal *WAL) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.wal = wal
	for _, t := range db.tables {
		t.wal = wal
	}
}

// Begin starts a transaction. SciLens transactions are latch-based:
// the transaction takes no locks until each operation executes, operations
// apply immediately, and Rollback undoes them via the undo log. This gives
// atomicity for the single-writer ingestion path, which is what the
// platform needs (readers are never blocked for the whole transaction).
func (db *DB) Begin() *Txn {
	return &Txn{db: db}
}
