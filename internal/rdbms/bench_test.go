package rdbms

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkCheckpointIncremental compares a full checkpoint against delta
// checkpoints at several dirty ratios over the same corpus: the issue's
// acceptance bar is a 10%-dirty delta costing <50% of a full checkpoint.
// Each iteration dirties the configured number of partitions (one row
// mutated per stripe, off the clock) and then times Checkpoint itself;
// the full case runs with DeltaLimit<0, which forces every checkpoint to
// re-serialise the whole store — the pre-incremental behaviour.
func BenchmarkCheckpointIncremental(b *testing.B) {
	const parts = 32
	const rows = 1 << 14
	cases := []struct {
		name  string
		dirty int // partitions dirtied per iteration
		full  bool
	}{
		{"full", parts, true},
		{"dirty-50pct", parts / 2, false},
		{"dirty-10pct", 3, false}, // 3/32 ≈ 9.4%
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			limit := 1 << 30 // delta cases: never compact mid-benchmark
			if c.full {
				limit = -1
			}
			db, err := OpenWithOptions(b.TempDir(), Options{Partitions: parts, DeltaLimit: limit})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.CreateTable("bench", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			// One representative pk per partition to dirty stripes with.
			rep := make(map[int]int64, parts)
			for i := int64(0); i < rows; i++ {
				if _, err := tbl.Insert(benchRow(i)); err != nil {
					b.Fatal(err)
				}
				if pi := tbl.partFor(Int(i)); rep[pi] == 0 {
					rep[pi] = i
				}
			}
			if _, err := db.Checkpoint(); err != nil { // base generation
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				touched := 0
				for pi := 0; pi < parts && touched < c.dirty; pi++ {
					id, ok := rep[pi]
					if !ok {
						continue
					}
					if err := tbl.Mutate(Int(id), func(r Row) (Row, error) {
						r[3] = Float(r[3].Float() + 1)
						return r, nil
					}); err != nil {
						b.Fatal(err)
					}
					touched++
				}
				b.StartTimer()
				st, err := db.Checkpoint()
				if err != nil {
					b.Fatal(err)
				}
				if want := c.dirty; !c.full && st.PartitionsWritten != want {
					b.Fatalf("delta wrote %d partitions, want %d", st.PartitionsWritten, want)
				}
			}
		})
	}
}

// BenchmarkWALAppendFsync measures per-append cost across the fsync
// policies under a single writer (the always case pays one fsync per
// record here; concurrent writers amortise it via group commit — see
// BenchmarkWALGroupCommit).
func BenchmarkWALAppendFsync(b *testing.B) {
	for _, policy := range []string{"checkpoint", "interval:25ms", "always"} {
		b.Run(policy, func(b *testing.B) {
			p, d, err := ParseFsyncPolicy(policy)
			if err != nil {
				b.Fatal(err)
			}
			db, err := OpenWithOptions(b.TempDir(), Options{Fsync: p, FsyncInterval: d})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			tbl, err := db.CreateTable("bench", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.Insert(benchRow(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALGroupCommit drives parallel writers under FsyncAlways: the
// flusher batches concurrently parked appenders onto one fsync, so
// per-op cost falls well below the single-writer fsync price as
// parallelism grows.
func BenchmarkWALGroupCommit(b *testing.B) {
	db, err := OpenWithOptions(b.TempDir(), Options{Fsync: FsyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("bench", benchSchema(b))
	if err != nil {
		b.Fatal(err)
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := tbl.Insert(benchRow(seq.Add(1))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	fsyncs, recs := db.wal.FsyncStats()
	if fsyncs > 0 {
		b.ReportMetric(float64(recs)/float64(fsyncs), "records/fsync")
	}
}

func benchSchema(b *testing.B) *Schema {
	b.Helper()
	s, err := NewSchema([]Column{
		{Name: "id", Type: TInt},
		{Name: "outlet", Type: TString, NotNull: true},
		{Name: "title", Type: TString},
		{Name: "score", Type: TFloat},
	}, "id")
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchRow(id int64) Row {
	return Row{Int(id), String("outlet"), String("title"), Float(0)}
}

// BenchmarkConcurrentTable drives a mixed Get/Mutate workload from
// parallel goroutines against tables with increasing partition counts.
// parts-1 is the single-lock baseline this PR replaces: every reader and
// writer serialised on one RWMutex. With lock striping, operations on
// different keys proceed in parallel and throughput scales with the
// stripe count on multi-core runners.
func BenchmarkConcurrentTable(b *testing.B) {
	const rows = 8192
	for _, parts := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("parts-%d", parts), func(b *testing.B) {
			db := NewDBWithOptions(Options{Partitions: parts})
			tbl, err := db.CreateTable("bench", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < rows; i++ {
				if _, err := tbl.Insert(benchRow(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := Int(int64(i*31) % rows)
					if i%5 == 0 {
						// 20% writes: the aggregate-bump shape of the
						// platform's reaction ingestion.
						if err := tbl.Mutate(id, func(r Row) (Row, error) {
							r[3] = Float(r[3].Float() + 1)
							return r, nil
						}); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := tbl.Get(id); err != nil {
							b.Fatal(err)
						}
					}
					i++
				}
			})
		})
	}
}

// BenchmarkConcurrentTableInsert measures pure insert throughput under
// parallel writers (disjoint keys) across the partition sweep.
func BenchmarkConcurrentTableInsert(b *testing.B) {
	for _, parts := range []int{1, 8} {
		b.Run(fmt.Sprintf("parts-%d", parts), func(b *testing.B) {
			db := NewDBWithOptions(Options{Partitions: parts})
			tbl, err := db.CreateTable("bench", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := tbl.Insert(benchRow(seq.Add(1))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCheckpoint measures one full online checkpoint — WAL rotation,
// whole-store generation with per-table barriers, atomic install, segment
// prune — over a populated durable store. DeltaLimit < 0 forces every
// checkpoint to be full; BenchmarkCheckpointIncremental covers the delta
// path.
func BenchmarkCheckpoint(b *testing.B) {
	const rows = 8192
	dir := b.TempDir()
	db, err := OpenWithOptions(dir, Options{DeltaLimit: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("bench", benchSchema(b))
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("outlet", HashIndex); err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < rows; i++ {
		if _, err := tbl.Insert(benchRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := db.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if st.Rows != rows {
			b.Fatalf("snapshot rows: %d", st.Rows)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds()*float64(b.N), "rows_snapshotted/s")
}

// BenchmarkWALAppend measures the per-mutation WAL overhead: the same
// insert workload against an in-memory table and a durable one.
func BenchmarkWALAppend(b *testing.B) {
	run := func(b *testing.B, db *DB) {
		tbl, err := db.CreateTable("bench", benchSchema(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tbl.Insert(benchRow(int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) {
		run(b, NewDB())
	})
	b.Run("durable", func(b *testing.B) {
		db, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		run(b, db)
	})
}
