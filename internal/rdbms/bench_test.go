package rdbms

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func benchSchema(b *testing.B) *Schema {
	b.Helper()
	s, err := NewSchema([]Column{
		{Name: "id", Type: TInt},
		{Name: "outlet", Type: TString, NotNull: true},
		{Name: "title", Type: TString},
		{Name: "score", Type: TFloat},
	}, "id")
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchRow(id int64) Row {
	return Row{Int(id), String("outlet"), String("title"), Float(0)}
}

// BenchmarkConcurrentTable drives a mixed Get/Mutate workload from
// parallel goroutines against tables with increasing partition counts.
// parts-1 is the single-lock baseline this PR replaces: every reader and
// writer serialised on one RWMutex. With lock striping, operations on
// different keys proceed in parallel and throughput scales with the
// stripe count on multi-core runners.
func BenchmarkConcurrentTable(b *testing.B) {
	const rows = 8192
	for _, parts := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("parts-%d", parts), func(b *testing.B) {
			db := NewDBWithOptions(Options{Partitions: parts})
			tbl, err := db.CreateTable("bench", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			for i := int64(0); i < rows; i++ {
				if _, err := tbl.Insert(benchRow(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := Int(int64(i*31) % rows)
					if i%5 == 0 {
						// 20% writes: the aggregate-bump shape of the
						// platform's reaction ingestion.
						if err := tbl.Mutate(id, func(r Row) (Row, error) {
							r[3] = Float(r[3].Float() + 1)
							return r, nil
						}); err != nil {
							b.Fatal(err)
						}
					} else {
						if _, err := tbl.Get(id); err != nil {
							b.Fatal(err)
						}
					}
					i++
				}
			})
		})
	}
}

// BenchmarkConcurrentTableInsert measures pure insert throughput under
// parallel writers (disjoint keys) across the partition sweep.
func BenchmarkConcurrentTableInsert(b *testing.B) {
	for _, parts := range []int{1, 8} {
		b.Run(fmt.Sprintf("parts-%d", parts), func(b *testing.B) {
			db := NewDBWithOptions(Options{Partitions: parts})
			tbl, err := db.CreateTable("bench", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			var seq atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := tbl.Insert(benchRow(seq.Add(1))); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkCheckpoint measures one online checkpoint — WAL rotation,
// whole-store snapshot with per-table barriers, atomic install, segment
// prune — over a populated durable store.
func BenchmarkCheckpoint(b *testing.B) {
	const rows = 8192
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("bench", benchSchema(b))
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.CreateIndex("outlet", HashIndex); err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < rows; i++ {
		if _, err := tbl.Insert(benchRow(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := db.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if st.Rows != rows {
			b.Fatalf("snapshot rows: %d", st.Rows)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)/b.Elapsed().Seconds()*float64(b.N), "rows_snapshotted/s")
}

// BenchmarkWALAppend measures the per-mutation WAL overhead: the same
// insert workload against an in-memory table and a durable one.
func BenchmarkWALAppend(b *testing.B) {
	run := func(b *testing.B, db *DB) {
		tbl, err := db.CreateTable("bench", benchSchema(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tbl.Insert(benchRow(int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("in-memory", func(b *testing.B) {
		run(b, NewDB())
	})
	b.Run("durable", func(b *testing.B) {
		db, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		run(b, db)
	})
}
