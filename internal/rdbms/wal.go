package rdbms

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// WAL op codes.
const (
	walInsert byte = iota + 1
	walUpdate
	walDelete
	walCommit
)

// ErrCorrupt is returned when WAL replay encounters an undecodable record.
var ErrCorrupt = errors.New("rdbms: corrupt WAL")

// walRecord is one log record. Insert carries Row; Update carries Key (the
// old pk) and Row; Delete carries Key; Commit carries nothing.
type walRecord struct {
	Op    byte
	Table string
	Key   Value
	Row   Row
}

// WAL is a write-ahead log: every table mutation is appended as a binary
// record before the call returns. Replay restores a database from the log.
// The WAL is safe for concurrent appends.
type WAL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	records int
	bytes   int64
}

// NewWAL wraps a writer (file, buffer, pipe) as a WAL sink.
func NewWAL(w io.Writer) *WAL {
	return &WAL{w: bufio.NewWriter(w)}
}

// Records returns the number of records appended so far.
func (l *WAL) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Bytes returns the number of bytes written so far.
func (l *WAL) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Flush drains the internal buffer to the sink.
func (l *WAL) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

func (l *WAL) append(rec walRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := writeRecord(l.w, rec)
	l.records++
	l.bytes += int64(n)
}

// writeRecord encodes one record; returns bytes written. Write errors on an
// in-memory buffer cannot occur; on real files the bufio layer reports them
// at Flush.
func writeRecord(w *bufio.Writer, rec walRecord) int {
	n := 0
	w.WriteByte(rec.Op)
	n++
	n += writeString(w, rec.Table)
	switch rec.Op {
	case walInsert:
		n += writeRow(w, rec.Row)
	case walUpdate:
		n += writeValue(w, rec.Key)
		n += writeRow(w, rec.Row)
	case walDelete:
		n += writeValue(w, rec.Key)
	}
	return n
}

func writeString(w *bufio.Writer, s string) int {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(s)))
	w.Write(buf[:k])
	w.WriteString(s)
	return k + len(s)
}

func writeRow(w *bufio.Writer, r Row) int {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(r)))
	w.Write(buf[:k])
	n := k
	for _, v := range r {
		n += writeValue(w, v)
	}
	return n
}

func writeValue(w *bufio.Writer, v Value) int {
	if v.IsNull() {
		w.WriteByte(0xFF)
		return 1
	}
	w.WriteByte(byte(v.kind))
	n := 1
	var buf [8]byte
	switch v.kind {
	case TInt:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.i))
		w.Write(buf[:])
		n += 8
	case TFloat:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		w.Write(buf[:])
		n += 8
	case TString:
		n += writeString(w, v.s)
	case TBool:
		if v.b {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
		n++
	case TTime:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.t.UnixNano()))
		w.Write(buf[:])
		n += 8
	}
	return n
}

// readRecord decodes one record; io.EOF at a record boundary means a clean
// end of log.
func readRecord(r *bufio.Reader) (walRecord, error) {
	op, err := r.ReadByte()
	if err != nil {
		return walRecord{}, err // io.EOF at boundary is clean
	}
	rec := walRecord{Op: op}
	if op < walInsert || op > walCommit {
		return rec, fmt.Errorf("bad op %d: %w", op, ErrCorrupt)
	}
	rec.Table, err = readString(r)
	if err != nil {
		return rec, fmt.Errorf("table: %w", ErrCorrupt)
	}
	switch op {
	case walInsert:
		rec.Row, err = readRow(r)
	case walUpdate:
		rec.Key, err = readValue(r)
		if err == nil {
			rec.Row, err = readRow(r)
		}
	case walDelete:
		rec.Key, err = readValue(r)
	}
	if err != nil {
		return rec, fmt.Errorf("payload: %w", ErrCorrupt)
	}
	return rec, nil
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", ErrCorrupt
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readRow(r *bufio.Reader) (Row, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, ErrCorrupt
	}
	row := make(Row, n)
	for i := range row {
		row[i], err = readValue(r)
		if err != nil {
			return nil, err
		}
	}
	return row, nil
}

func readValue(r *bufio.Reader) (Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	if kind == 0xFF {
		return Null(), nil
	}
	var buf [8]byte
	switch Type(kind) {
	case TInt:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Int(int64(binary.LittleEndian.Uint64(buf[:]))), nil
	case TFloat:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case TString:
		s, err := readString(r)
		if err != nil {
			return Value{}, err
		}
		return String(s), nil
	case TBool:
		b, err := r.ReadByte()
		if err != nil {
			return Value{}, err
		}
		return Bool(b == 1), nil
	case TTime:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Time(time.Unix(0, int64(binary.LittleEndian.Uint64(buf[:]))).UTC()), nil
	default:
		return Value{}, ErrCorrupt
	}
}

// Replay applies a serialised WAL to db. Tables must already exist with
// matching schemas (the WAL logs data, not DDL). Replay applies records in
// order; it stops cleanly at EOF and returns the number of records applied.
func Replay(db *DB, r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	applied := 0
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		if rec.Op == walCommit {
			applied++
			continue
		}
		t, err := db.Table(rec.Table)
		if err != nil {
			return applied, fmt.Errorf("replay: %w", err)
		}
		switch rec.Op {
		case walInsert:
			_, err = t.Insert(rec.Row)
		case walUpdate:
			err = t.Update(rec.Key, rec.Row)
		case walDelete:
			err = t.Delete(rec.Key)
		}
		if err != nil {
			return applied, fmt.Errorf("replay %d: %w", applied, err)
		}
		applied++
	}
}
