package rdbms

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/rdbms/vfs"
)

// WAL op codes.
const (
	walInsert byte = iota + 1
	walUpdate
	walDelete
	walCommit
	walCreateTable
	walCreateIndex
	walDropTable
)

// ErrCorrupt is returned when WAL replay encounters an undecodable record.
var ErrCorrupt = errors.New("rdbms: corrupt WAL")

// ErrWALBroken is returned by mutations after a WAL append failed to reach
// the OS (disk full, I/O error): the log may end in a torn record, so
// further appends are refused — writes fail instead of being silently
// acknowledged without durability. A successful Checkpoint repairs the
// condition: rotation starts a clean segment and the snapshot captures the
// in-memory state the broken segment could not log.
var ErrWALBroken = errors.New("rdbms: write-ahead log broken (append failed)")

// FsyncPolicy selects when WAL appends are fsynced to stable storage. All
// policies flush every record to the OS write-ahead (a process crash never
// loses an acknowledged write); the policy governs the power-loss window.
type FsyncPolicy int

const (
	// FsyncCheckpoint (the default) fsyncs only at checkpoint, rotation
	// and close — the cheapest policy; a power loss can drop everything
	// since the last checkpoint.
	FsyncCheckpoint FsyncPolicy = iota
	// FsyncIntervalPolicy fsyncs on a fixed cadence from one background
	// flusher goroutine; a power loss drops at most one interval of
	// acknowledged writes. Appenders never wait.
	FsyncIntervalPolicy
	// FsyncAlways gives per-commit durability: every append parks until an
	// fsync covers its record. A single flusher goroutine batches all
	// concurrently parked appenders onto one fsync (group commit), so the
	// cost is one fsync per batch, not one per writer.
	FsyncAlways
)

// String renders the policy in the form ParseFsyncPolicy accepts.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncIntervalPolicy:
		return "interval"
	case FsyncAlways:
		return "always"
	default:
		return "checkpoint"
	}
}

// DefaultFsyncInterval is the flush cadence of FsyncIntervalPolicy when the
// options do not name one.
const DefaultFsyncInterval = 100 * time.Millisecond

// ParseFsyncPolicy parses an operator-facing policy string: "checkpoint",
// "always", "interval" (default cadence) or "interval:<duration>" (e.g.
// "interval:25ms").
func ParseFsyncPolicy(s string) (FsyncPolicy, time.Duration, error) {
	switch {
	case s == "" || s == "checkpoint":
		return FsyncCheckpoint, 0, nil
	case s == "always":
		return FsyncAlways, 0, nil
	case s == "interval":
		return FsyncIntervalPolicy, DefaultFsyncInterval, nil
	case strings.HasPrefix(s, "interval:"):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval:"))
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("rdbms: bad fsync interval %q", s)
		}
		return FsyncIntervalPolicy, d, nil
	default:
		return 0, 0, fmt.Errorf("rdbms: unknown fsync policy %q (want checkpoint, interval[:dur] or always)", s)
	}
}

// walRecord is one log record. Insert carries Row; Update carries Key (the
// old pk) and Row; Delete carries Key; Commit carries nothing. CreateTable
// carries the schema columns, pk name and partition count; CreateIndex
// carries the column and kind; DropTable carries only the table name — the
// WAL logs DDL as well as data, so a log alone (no snapshot yet) can
// rebuild a database from scratch.
type walRecord struct {
	Op    byte
	Table string
	Key   Value
	Row   Row

	// DDL payloads.
	Cols   []Column
	PKName string
	Parts  int
	Col    string
	Kind   IndexKind
}

// WAL is a write-ahead log: every table mutation is appended as a binary
// record before the call returns. Replay restores a database from the log.
// The WAL is safe for concurrent appends. File-backed WALs (NewWALFile)
// flush each record to the OS as it is appended, so a process crash loses
// at most the record being written — the torn tail that recovery truncates.
type WAL struct {
	mu      sync.Mutex
	w       *bufio.Writer
	f       vfs.File // nil for plain writers
	records int
	bytes   int64
	broken  bool // an append failed: the tail may be torn, refuse appends

	// Group-commit state (file-backed WALs with a non-checkpoint policy).
	policy      FsyncPolicy
	interval    time.Duration
	durable     int        // record count covered by the last fsync
	failedBelow int        // records ≤ this were abandoned with a torn tail
	closed      bool       // closeFile/Abandon ran: flusher must exit
	syncCond    *sync.Cond // broadcast when durable advances or the WAL breaks
	flushCond   *sync.Cond // signalled when the always-flusher has work
	quit        chan struct{}
	stopOnce    sync.Once

	// Fsync accounting: fsyncs issued by the flusher and the records they
	// committed — fsyncedRecords/fsyncs is the achieved group-commit batch.
	fsyncs         uint64
	fsyncedRecords uint64
}

// NewWAL wraps a writer (file, buffer, pipe) as a WAL sink.
func NewWAL(w io.Writer) *WAL {
	return &WAL{w: bufio.NewWriter(w)}
}

// NewWALFile wraps an open file (an *os.File or any vfs.File) as a WAL
// sink with per-record flushing and the default checkpoint-only fsync
// policy.
func NewWALFile(f vfs.File) *WAL {
	return NewWALFilePolicy(f, FsyncCheckpoint, 0)
}

// NewWALFilePolicy wraps an open file as a WAL sink with an explicit fsync
// policy. FsyncIntervalPolicy and FsyncAlways start one background flusher
// goroutine; it exits when the WAL is closed.
func NewWALFilePolicy(f vfs.File, policy FsyncPolicy, interval time.Duration) *WAL {
	l := &WAL{w: bufio.NewWriterSize(f, 1<<16), f: f, policy: policy, interval: interval}
	l.syncCond = sync.NewCond(&l.mu)
	l.flushCond = sync.NewCond(&l.mu)
	switch policy {
	case FsyncIntervalPolicy:
		if l.interval <= 0 {
			l.interval = DefaultFsyncInterval
		}
		l.quit = make(chan struct{})
		go l.intervalFlusher()
	case FsyncAlways:
		go l.alwaysFlusher()
	}
	return l
}

// Policy reports the WAL's fsync policy.
func (l *WAL) Policy() FsyncPolicy {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.policy
}

// FsyncStats reports the flusher's fsync count and the number of records
// those fsyncs committed (their ratio is the achieved group-commit batch).
func (l *WAL) FsyncStats() (fsyncs, records uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fsyncs, l.fsyncedRecords
}

// syncPending commits everything appended so far with one flush+fsync and
// advances the durable watermark. The caller holds l.mu; the buffered
// flush runs under it, but the mutex is RELEASED for the disk fsync so
// appenders keep appending (and parking) while the fsync is in flight —
// that overlap is what builds group-commit batches, and it keeps every
// table mutation from stalling behind a disk write. Returns with l.mu
// held. A rotation or close racing the unlocked fsync supersedes its
// outcome: the rotate/close path fsyncs (or abandons) the old segment
// itself and advances the watermark, so a stale handle's result —
// including an EBADF from the concurrently closed file — is discarded.
func (l *WAL) syncPending() {
	target := l.records
	if err := l.w.Flush(); err != nil {
		// Parked appenders observe broken and fail their mutations.
		l.broken = true
		l.syncCond.Broadcast()
		return
	}
	f := l.f
	if f == nil {
		if target > l.durable {
			l.durable = target
		}
		l.syncCond.Broadcast()
		return
	}
	l.mu.Unlock()
	fsyncStart := time.Now() //scilint:ignore determinism fsync latency is operator telemetry, not replayed state
	err := f.Sync()
	mWALFsync.ObserveDuration(time.Since(fsyncStart)) //scilint:ignore determinism fsync latency is operator telemetry, not replayed state
	l.mu.Lock()
	if l.f != f {
		return // rotated or closed mid-fsync: outcome superseded
	}
	if err != nil {
		l.broken = true
		l.syncCond.Broadcast()
		return
	}
	l.fsyncs++
	if target > l.durable {
		l.fsyncedRecords += uint64(target - l.durable)
		mWALGroupCommit.Observe(int64(target - l.durable))
		l.durable = target
	}
	l.syncCond.Broadcast()
}

// alwaysFlusher is the FsyncAlways group-commit loop: it wakes when
// appenders have parked records, commits everything appended so far with
// one flush+fsync, and broadcasts the new durable watermark. Appenders
// that arrive while an fsync is in flight park and ride the next one —
// N concurrent writers cost one fsync, not N.
func (l *WAL) alwaysFlusher() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.closed && (l.broken || l.durable >= l.records) {
			l.flushCond.Wait()
		}
		if l.closed {
			return
		}
		l.syncPending()
	}
}

// intervalFlusher fsyncs pending records on a fixed cadence, bounding the
// power-loss window to one interval without any appender ever waiting.
func (l *WAL) intervalFlusher() {
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-t.C:
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if !l.broken && l.records > l.durable && l.f != nil {
			l.syncPending()
		}
		l.mu.Unlock()
	}
}

// stopFlusher shuts the background flusher down (idempotent).
func (l *WAL) stopFlusher() {
	l.stopOnce.Do(func() {
		if l.quit != nil {
			close(l.quit)
		}
	})
	if l.flushCond != nil {
		l.flushCond.Broadcast()
	}
	if l.syncCond != nil {
		l.syncCond.Broadcast()
	}
}

// Records returns the number of records appended so far.
func (l *WAL) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Bytes returns the number of bytes written so far.
func (l *WAL) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Err reports whether the WAL is in the broken state (an append failed).
func (l *WAL) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return ErrWALBroken
	}
	return nil
}

// Flush drains the internal buffer to the sink.
func (l *WAL) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

// Sync flushes the buffer and, for file-backed WALs, fsyncs the file.
func (l *WAL) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.f != nil {
		return l.f.Sync()
	}
	return nil
}

// rotate atomically redirects subsequent appends to f, returning the
// previous file (flushed and fsynced) for the caller to close. Used by the
// checkpoint cycle: records racing the rotation land in exactly one of the
// two segments. Rotating a broken WAL skips the old segment's flush (its
// tail is already torn; the snapshot the checkpoint is about to write
// supersedes it) and clears the broken state — the new segment is clean.
func (l *WAL) rotate(f vfs.File) (vfs.File, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.broken {
		if err := l.w.Flush(); err != nil {
			return nil, err
		}
		if l.f != nil {
			if err := l.f.Sync(); err != nil {
				return nil, err
			}
		}
	}
	if l.broken {
		// The torn tail is abandoned with the old segment: any group-commit
		// waiter still parked on it must fail rather than ride a later
		// watermark — its record exists nowhere the recovery path reads.
		l.failedBelow = l.records
	}
	old := l.f
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	l.broken = false
	// Everything appended so far lives in the old segment (fsynced above)
	// or was abandoned with the torn tail: the new segment starts with
	// nothing pending.
	l.durable = l.records
	if l.syncCond != nil {
		l.syncCond.Broadcast()
	}
	return old, nil
}

// append encodes one record and, for file-backed WALs, makes it durable
// per the fsync policy before returning — write-ahead: callers log first
// and apply the in-memory mutation only on success, so an acknowledged
// write is always recoverable. Under FsyncCheckpoint and
// FsyncIntervalPolicy the record is flushed to the OS (the disk fsync
// happens at checkpoint or on the flusher cadence); under FsyncAlways the
// append parks until the flusher's next group fsync covers its record. A
// flush or fsync failure marks the WAL broken and fails this and every
// later append until a checkpoint rotates onto a clean segment.
func (l *WAL) append(rec walRecord) error {
	start := time.Now()                                              //scilint:ignore determinism append latency is operator telemetry, not replayed state
	defer func() { mWALAppend.ObserveDuration(time.Since(start)) }() //scilint:ignore determinism append latency is operator telemetry, not replayed state
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken || (l.closed && l.f == nil) {
		// Closed WALs refuse appends: acknowledging a write the released
		// segment file can never hold would trade durability for silence.
		return ErrWALBroken
	}
	n := writeRecord(l.w, rec)
	l.records++
	l.bytes += int64(n)
	if l.f == nil {
		return nil
	}
	if l.policy == FsyncAlways {
		// Group commit: park on the committed-record watermark. The
		// flusher batches every appender parked here onto one fsync. The
		// failedBelow check comes first: a broken-WAL rotation abandons the
		// torn tail, and a record abandoned there must fail even though the
		// rotation advances the watermark past it.
		//
		// Callers append while holding the row's partition write lock, so
		// under this policy a stripe's mutation becomes visible to readers
		// only once it is durable — a reader can never observe a row that
		// a power loss could retract. The cost is that reads of a stripe
		// with an in-flight commit wait out the fsync; releasing the
		// stripe lock before parking (visible-before-durable) is a
		// deliberate non-goal here.
		lsn := l.records
		l.flushCond.Signal()
		for {
			if lsn <= l.failedBelow {
				return ErrWALBroken
			}
			if l.durable >= lsn {
				return nil
			}
			if l.broken || l.closed {
				return ErrWALBroken
			}
			l.syncCond.Wait()
		}
	}
	if err := l.w.Flush(); err != nil {
		l.broken = true
		return fmt.Errorf("%w: %v", ErrWALBroken, err)
	}
	return nil
}

// writeRecord encodes one record; returns bytes written. Write errors on an
// in-memory buffer cannot occur; on real files the bufio layer reports them
// at Flush.
func writeRecord(w *bufio.Writer, rec walRecord) int {
	n := 0
	w.WriteByte(rec.Op)
	n++
	n += writeString(w, rec.Table)
	switch rec.Op {
	case walInsert:
		n += writeRow(w, rec.Row)
	case walUpdate:
		n += writeValue(w, rec.Key)
		n += writeRow(w, rec.Row)
	case walDelete:
		n += writeValue(w, rec.Key)
	case walCreateTable:
		n += writeUvarint(w, uint64(rec.Parts))
		n += writeUvarint(w, uint64(len(rec.Cols)))
		for _, c := range rec.Cols {
			n += writeString(w, c.Name)
			w.WriteByte(byte(c.Type))
			b := byte(0)
			if c.NotNull {
				b = 1
			}
			w.WriteByte(b)
			n += 2
		}
		n += writeString(w, rec.PKName)
	case walCreateIndex:
		n += writeString(w, rec.Col)
		w.WriteByte(byte(rec.Kind))
		n++
	}
	return n
}

func writeUvarint(w *bufio.Writer, v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], v)
	w.Write(buf[:k])
	return k
}

func writeString(w *bufio.Writer, s string) int {
	n := writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
	return n + len(s)
}

func writeRow(w *bufio.Writer, r Row) int {
	n := writeUvarint(w, uint64(len(r)))
	for _, v := range r {
		n += writeValue(w, v)
	}
	return n
}

func writeValue(w *bufio.Writer, v Value) int {
	if v.IsNull() {
		w.WriteByte(0xFF)
		return 1
	}
	w.WriteByte(byte(v.kind))
	n := 1
	var buf [8]byte
	switch v.kind {
	case TInt:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.i))
		w.Write(buf[:])
		n += 8
	case TFloat:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		w.Write(buf[:])
		n += 8
	case TString:
		n += writeString(w, v.s)
	case TBool:
		if v.b {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
		n++
	case TTime:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.t.UnixNano()))
		w.Write(buf[:])
		n += 8
	}
	return n
}

// readRecord decodes one record; io.EOF at a record boundary means a clean
// end of log. Any mid-record failure surfaces as ErrCorrupt.
func readRecord(r *bufio.Reader) (walRecord, error) {
	op, err := r.ReadByte()
	if err != nil {
		return walRecord{}, err // io.EOF at boundary is clean
	}
	rec := walRecord{Op: op}
	if op < walInsert || op > walDropTable {
		return rec, fmt.Errorf("bad op %d: %w", op, ErrCorrupt)
	}
	rec.Table, err = readString(r)
	if err != nil {
		return rec, fmt.Errorf("table: %w", ErrCorrupt)
	}
	switch op {
	case walInsert:
		rec.Row, err = readRow(r)
	case walUpdate:
		rec.Key, err = readValue(r)
		if err == nil {
			rec.Row, err = readRow(r)
		}
	case walDelete:
		rec.Key, err = readValue(r)
	case walCreateTable:
		err = readCreateTable(r, &rec)
	case walCreateIndex:
		rec.Col, err = readString(r)
		if err == nil {
			var k byte
			k, err = r.ReadByte()
			rec.Kind = IndexKind(k)
		}
	}
	if err != nil {
		return rec, fmt.Errorf("payload: %w", ErrCorrupt)
	}
	return rec, nil
}

func readCreateTable(r *bufio.Reader, rec *walRecord) error {
	parts, err := binary.ReadUvarint(r)
	if err != nil || parts > 1<<16 {
		return ErrCorrupt
	}
	rec.Parts = int(parts)
	ncols, err := binary.ReadUvarint(r)
	if err != nil || ncols > 1<<12 {
		return ErrCorrupt
	}
	rec.Cols = make([]Column, ncols)
	for i := range rec.Cols {
		if rec.Cols[i].Name, err = readString(r); err != nil {
			return err
		}
		ty, err := r.ReadByte()
		if err != nil {
			return err
		}
		nn, err := r.ReadByte()
		if err != nil {
			return err
		}
		rec.Cols[i].Type = Type(ty)
		rec.Cols[i].NotNull = nn == 1
	}
	rec.PKName, err = readString(r)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", ErrCorrupt
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readRow(r *bufio.Reader) (Row, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, ErrCorrupt
	}
	row := make(Row, n)
	for i := range row {
		row[i], err = readValue(r)
		if err != nil {
			return nil, err
		}
	}
	return row, nil
}

func readValue(r *bufio.Reader) (Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	if kind == 0xFF {
		return Null(), nil
	}
	var buf [8]byte
	switch Type(kind) {
	case TInt:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Int(int64(binary.LittleEndian.Uint64(buf[:]))), nil
	case TFloat:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case TString:
		s, err := readString(r)
		if err != nil {
			return Value{}, err
		}
		return String(s), nil
	case TBool:
		b, err := r.ReadByte()
		if err != nil {
			return Value{}, err
		}
		return Bool(b == 1), nil
	case TTime:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Value{}, err
		}
		return Time(time.Unix(0, int64(binary.LittleEndian.Uint64(buf[:]))).UTC()), nil
	default:
		return Value{}, ErrCorrupt
	}
}

// applyRecord applies one decoded record to db. In strict mode data
// records must apply cleanly (duplicate inserts, missing updates and
// missing deletes are errors). In loose mode — recovery replay on top of a
// snapshot that may already contain some of the log's effects — records
// apply with last-writer-wins semantics: inserts upsert, updates delete
// the old key (if present) and upsert the new row, deletes of absent rows
// and drops of absent tables are no-ops, and re-created tables/indexes are
// skipped.
func applyRecord(db *DB, rec walRecord, loose bool) error {
	switch rec.Op {
	case walCommit:
		return nil
	case walCreateTable:
		schema, err := NewSchema(rec.Cols, rec.PKName)
		if err != nil {
			return fmt.Errorf("replay schema for %q: %w", rec.Table, err)
		}
		if _, err := db.CreateTablePartitioned(rec.Table, schema, rec.Parts); err != nil {
			if errors.Is(err, ErrExists) {
				return nil // snapshot already has it
			}
			return err
		}
		return nil
	case walCreateIndex:
		t, err := db.Table(rec.Table)
		if err != nil {
			return fmt.Errorf("replay: %w", err)
		}
		if err := t.CreateIndex(rec.Col, rec.Kind); err != nil {
			if errors.Is(err, ErrExists) {
				return nil
			}
			return err
		}
		return nil
	case walDropTable:
		if err := db.DropTable(rec.Table); err != nil {
			if loose && errors.Is(err, ErrNotFound) {
				return nil // snapshot chain never carried it
			}
			return err
		}
		return nil
	}
	t, err := db.Table(rec.Table)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	switch rec.Op {
	case walInsert:
		if loose {
			return t.Upsert(rec.Row)
		}
		_, err = t.Insert(rec.Row)
	case walUpdate:
		if loose {
			if !rec.Key.Equal(rec.Row[t.schema.PK]) {
				if derr := t.Delete(rec.Key); derr != nil && !errors.Is(derr, ErrNotFound) {
					return derr
				}
			}
			return t.Upsert(rec.Row)
		}
		err = t.Update(rec.Key, rec.Row)
	case walDelete:
		err = t.Delete(rec.Key)
		if loose && errors.Is(err, ErrNotFound) {
			err = nil
		}
	}
	return err
}

// Replay applies a serialised WAL to db in strict mode: DDL records
// recreate tables and indexes (skipped when they already exist), data
// records must apply cleanly, and the first undecodable record aborts with
// ErrCorrupt. It returns the number of records applied. Recovery from disk
// uses the tolerant variant inside Open instead.
func Replay(db *DB, r io.Reader) (int, error) {
	br := bufio.NewReader(r)
	applied := 0
	for {
		rec, err := readRecord(br)
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		if err := applyRecord(db, rec, false); err != nil {
			return applied, fmt.Errorf("replay %d: %w", applied, err)
		}
		applied++
	}
}
