package readability

import (
	"strings"

	"repro/internal/textutil"
)

// familiarStems approximates the Dale–Chall familiar-word list (3000 words
// known to 80% of fourth-graders) with a stem set covering the
// high-frequency core. A word is familiar if it is a stop word, is short (<= 4 letters and
// monosyllabic), or its stem is in this set.
var familiarStems = map[string]struct{}{
	"peopl": {}, "world": {}, "week": {}, "year": {}, "month": {}, "dai": {},
	"time": {}, "home": {}, "hous": {}, "school": {}, "work": {}, "plai": {},
	"water": {}, "food": {}, "famili": {}, "friend": {}, "mother": {},
	"father": {}, "children": {}, "child": {}, "man": {}, "woman": {},
	"monei": {}, "citi": {}, "town": {}, "countri": {}, "stori": {},
	"news": {}, "paper": {}, "book": {}, "word": {}, "letter": {},
	"number": {}, "live": {}, "life": {}, "help": {}, "need": {},
	"want": {}, "know": {}, "think": {}, "sai": {}, "tell": {}, "ask": {},
	"find": {}, "look": {}, "come": {}, "go": {}, "get": {}, "give": {},
	"take": {}, "make": {}, "made": {}, "put": {}, "keep": {}, "start": {},
	"stop": {}, "open": {}, "close": {}, "turn": {}, "walk": {}, "run": {},
	"eat": {}, "drink": {}, "sleep": {}, "read": {}, "write": {},
	"learn": {}, "teach": {}, "show": {}, "watch": {}, "hear": {},
	"listen": {}, "talk": {}, "speak": {}, "call": {}, "answer": {},
	"hand": {}, "head": {}, "ei": {}, "face": {}, "bodi": {}, "heart": {},
	"doctor": {}, "sick": {}, "ill": {}, "well": {}, "health": {},
	"good": {}, "bad": {}, "big": {}, "small": {}, "long": {}, "short": {},
	"old": {}, "new": {}, "young": {}, "high": {}, "low": {}, "fast": {},
	"slow": {}, "hot": {}, "cold": {}, "warm": {}, "hard": {}, "easi": {},
	"right": {}, "left": {}, "first": {}, "last": {}, "next": {},
	"earli": {}, "late": {}, "todai": {}, "tomorrow": {}, "yesterdai": {},
	"morn": {}, "night": {}, "place": {}, "wai": {}, "thing": {},
	"part": {}, "side": {}, "end": {}, "begin": {}, "becaus": {},
	"befor": {}, "after": {}, "never": {}, "alwai": {}, "often": {},
	"sometim": {}, "nearli": {}, "almost": {}, "much": {}, "mani": {},
	"report": {}, "state": {}, "countr": {}, "nation": {}, "govern": {},
	"group": {}, "member": {}, "leader": {}, "question": {}, "problem": {},
	"idea": {}, "plan": {}, "chang": {}, "mean": {}, "fact": {},
	"true": {}, "fals": {}, "happen": {}, "move": {}, "feel": {},
	"felt": {}, "found": {}, "gave": {}, "came": {}, "went": {},
	"said": {}, "told": {}, "knew": {}, "thought": {}, "saw": {},
	"studi": {}, "test": {}, "caus": {}, "spread": {}, "case": {},
	"death": {}, "die": {}, "kill": {}, "save": {}, "care": {},
	"fear": {}, "hope": {}, "love": {}, "hate": {}, "believ": {},
}

// IsFamiliarWord reports whether the word counts as "familiar" for the
// Dale–Chall approximation.
func IsFamiliarWord(word string) bool {
	w := strings.ToLower(word)
	if textutil.IsStopwordLower(w) {
		return true
	}
	if len(w) <= 4 && textutil.SyllableCountLower(w) == 1 {
		return true
	}
	_, ok := familiarStems[textutil.Stem(w)]
	return ok
}

// familiarParts is IsFamiliarWord over precomputed word parts (lowered
// form, stem, syllable count, stop-word flag) from a shared analysis.
func familiarParts(lower, stem string, syllables int, stop bool) bool {
	if stop {
		return true
	}
	if len(lower) <= 4 && syllables == 1 {
		return true
	}
	_, ok := familiarStems[stem]
	return ok
}

// FamiliarListSize returns the stem-set size, for diagnostics.
func FamiliarListSize() int { return len(familiarStems) }
