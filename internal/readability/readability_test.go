package readability

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

const simpleText = `The cat sat on the mat. The dog ran to the park. ` +
	`We like to play all day. The sun is warm and bright.`

const complexText = `Epidemiological investigations concerning asymptomatic ` +
	`transmission dynamics necessitate comprehensive longitudinal ` +
	`surveillance methodologies. Multivariate statistical analyses ` +
	`demonstrate significant heterogeneity across demographic strata, ` +
	`complicating interpretability considerations substantially.`

func TestAnalyzeBasicCounts(t *testing.T) {
	s := Analyze("The cat sat. The dog ran.")
	if s.Sentences != 2 {
		t.Errorf("sentences: got %d want 2", s.Sentences)
	}
	if s.Words != 6 {
		t.Errorf("words: got %d want 6", s.Words)
	}
	if s.Syllables != 6 {
		t.Errorf("syllables: got %d want 6", s.Syllables)
	}
	if s.Polysyllables != 0 {
		t.Errorf("polysyllables: got %d want 0", s.Polysyllables)
	}
	if s.Letters != 18 {
		t.Errorf("letters: got %d want 18", s.Letters)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze("")
	if s.Words != 0 || s.Sentences != 0 {
		t.Errorf("empty: %+v", s)
	}
	if sc := Compute(s); sc != (Scores{}) {
		t.Errorf("empty scores: %+v", sc)
	}
}

func TestSimpleEasierThanComplex(t *testing.T) {
	simple := Score(simpleText)
	complexSc := Score(complexText)

	if simple.FleschReadingEase <= complexSc.FleschReadingEase {
		t.Errorf("Flesch ease: simple %.1f should exceed complex %.1f",
			simple.FleschReadingEase, complexSc.FleschReadingEase)
	}
	if simple.FleschKincaidGrade >= complexSc.FleschKincaidGrade {
		t.Errorf("FK grade: simple %.1f should be below complex %.1f",
			simple.FleschKincaidGrade, complexSc.FleschKincaidGrade)
	}
	if simple.GunningFog >= complexSc.GunningFog {
		t.Errorf("fog: simple %.1f vs complex %.1f", simple.GunningFog, complexSc.GunningFog)
	}
	if simple.SMOG >= complexSc.SMOG {
		t.Errorf("smog: simple %.1f vs complex %.1f", simple.SMOG, complexSc.SMOG)
	}
	if simple.ColemanLiau >= complexSc.ColemanLiau {
		t.Errorf("coleman-liau: simple %.1f vs complex %.1f", simple.ColemanLiau, complexSc.ColemanLiau)
	}
	if simple.ARI >= complexSc.ARI {
		t.Errorf("ari: simple %.1f vs complex %.1f", simple.ARI, complexSc.ARI)
	}
	if simple.DaleChall >= complexSc.DaleChall {
		t.Errorf("dale-chall: simple %.1f vs complex %.1f", simple.DaleChall, complexSc.DaleChall)
	}
}

func TestFleschRangeForSimpleProse(t *testing.T) {
	sc := Score(simpleText)
	if sc.FleschReadingEase < 80 || sc.FleschReadingEase > 120 {
		t.Errorf("simple prose Flesch ease out of range: %.1f", sc.FleschReadingEase)
	}
	if sc.FleschKincaidGrade > 4 {
		t.Errorf("simple prose FK grade too high: %.1f", sc.FleschKincaidGrade)
	}
}

func TestComputeKnownValues(t *testing.T) {
	// Hand-checked stats: 100 words, 10 sentences, 150 syllables.
	s := Stats{Sentences: 10, Words: 100, Syllables: 150, Polysyllables: 10, Letters: 470, DifficultWords: 15}
	sc := Compute(s)
	wantFlesch := 206.835 - 1.015*10 - 84.6*1.5
	if math.Abs(sc.FleschReadingEase-wantFlesch) > 1e-9 {
		t.Errorf("flesch: got %v want %v", sc.FleschReadingEase, wantFlesch)
	}
	wantFK := 0.39*10 + 11.8*1.5 - 15.59
	if math.Abs(sc.FleschKincaidGrade-wantFK) > 1e-9 {
		t.Errorf("fk: got %v want %v", sc.FleschKincaidGrade, wantFK)
	}
	wantFog := 0.4 * (10 + 100*10.0/100)
	if math.Abs(sc.GunningFog-wantFog) > 1e-9 {
		t.Errorf("fog: got %v want %v", sc.GunningFog, wantFog)
	}
	wantSMOG := 1.0430*math.Sqrt(10*30.0/10) + 3.1291
	if math.Abs(sc.SMOG-wantSMOG) > 1e-9 {
		t.Errorf("smog: got %v want %v", sc.SMOG, wantSMOG)
	}
	wantCL := 0.0588*470 - 0.296*10 - 15.8
	if math.Abs(sc.ColemanLiau-wantCL) > 1e-9 {
		t.Errorf("cl: got %v want %v", sc.ColemanLiau, wantCL)
	}
	wantARI := 4.71*4.7 + 0.5*10 - 21.43
	if math.Abs(sc.ARI-wantARI) > 1e-9 {
		t.Errorf("ari: got %v want %v", sc.ARI, wantARI)
	}
	// 15% difficult > 5% threshold: adjusted formula.
	wantDC := 0.1579*15 + 0.0496*10 + 3.6365
	if math.Abs(sc.DaleChall-wantDC) > 1e-9 {
		t.Errorf("dc: got %v want %v", sc.DaleChall, wantDC)
	}
}

func TestDaleChallNoAdjustmentBelowThreshold(t *testing.T) {
	s := Stats{Sentences: 10, Words: 100, Syllables: 120, Letters: 400, DifficultWords: 3}
	sc := Compute(s)
	want := 0.1579*3 + 0.0496*10
	if math.Abs(sc.DaleChall-want) > 1e-9 {
		t.Errorf("dc: got %v want %v", sc.DaleChall, want)
	}
}

func TestGradeConsensusIsMedian(t *testing.T) {
	sc := Scores{FleschKincaidGrade: 1, GunningFog: 9, SMOG: 5, ColemanLiau: 3, ARI: 7}
	if g := GradeConsensus(sc); g != 5 {
		t.Errorf("median: got %v want 5", g)
	}
}

func TestScoresFiniteProperty(t *testing.T) {
	check := func(words []string) bool {
		text := strings.Join(words, " ")
		sc := Score(text)
		vals := []float64{
			sc.FleschReadingEase, sc.FleschKincaidGrade, sc.GunningFog,
			sc.SMOG, sc.ColemanLiau, sc.ARI, sc.DaleChall,
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsFamiliarWord(t *testing.T) {
	familiar := []string{"the", "cat", "people", "work", "doctors", "said", "day"}
	for _, w := range familiar {
		if !IsFamiliarWord(w) {
			t.Errorf("%q should be familiar", w)
		}
	}
	difficult := []string{"epidemiological", "heterogeneity", "surveillance", "asymptomatic"}
	for _, w := range difficult {
		if IsFamiliarWord(w) {
			t.Errorf("%q should be difficult", w)
		}
	}
}

func TestFamiliarListSize(t *testing.T) {
	if n := FamiliarListSize(); n < 100 {
		t.Errorf("familiar list too small: %d", n)
	}
}

func TestAnalyzeSingleWordNoPeriod(t *testing.T) {
	s := Analyze("Headline")
	if s.Sentences != 1 {
		t.Errorf("sentences: got %d want 1", s.Sentences)
	}
	if s.Words != 1 {
		t.Errorf("words: got %d want 1", s.Words)
	}
}
