// Package readability implements the classical readability formulas the
// SciLens content indicators report: Flesch Reading-Ease, Flesch–Kincaid
// grade, Gunning-Fog, SMOG, Coleman–Liau, Automated Readability Index and
// Dale–Chall. All formulas share one pass of text statistics, computed by
// Analyze.
package readability

import (
	"math"

	"repro/internal/textutil"
)

// Stats holds the text statistics every formula consumes.
type Stats struct {
	// Sentences is the number of sentences (at least 1 for non-empty text).
	Sentences int
	// Words is the number of word tokens.
	Words int
	// Syllables is the total syllable estimate over all words.
	Syllables int
	// Polysyllables is the number of words with >= 3 syllables.
	Polysyllables int
	// Letters is the number of letter runes inside word tokens.
	Letters int
	// DifficultWords is the number of words not on the familiar-word list
	// (Dale–Chall approximation; see IsFamiliarWord).
	DifficultWords int
}

// Analyze computes the statistics for text in a single tokenisation pass.
func Analyze(text string) Stats {
	var s Stats
	toks := textutil.Tokenize(text)
	for _, t := range toks {
		if t.Kind != textutil.KindWord {
			continue
		}
		s.Words++
		syl := textutil.SyllableCount(t.Text)
		s.Syllables += syl
		if syl >= 3 {
			s.Polysyllables++
		}
		for _, r := range t.Text {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
				s.Letters++
			}
		}
		if !IsFamiliarWord(t.Text) {
			s.DifficultWords++
		}
	}
	s.Sentences = textutil.SentenceCount(text)
	if s.Words > 0 && s.Sentences == 0 {
		s.Sentences = 1
	}
	return s
}

// AnalyzeDoc computes the same statistics as Analyze from a shared
// single-pass document analysis, without re-tokenising, re-stemming or
// re-counting syllables.
func AnalyzeDoc(a *textutil.Analysis) Stats {
	var s Stats
	s.Words = len(a.Words)
	s.Letters = a.Letters
	for i := range a.Words {
		w := &a.Words[i]
		s.Syllables += w.Syllables
		if w.Syllables >= 3 {
			s.Polysyllables++
		}
		if !familiarParts(w.Lower, w.Stem, w.Syllables, w.Stop) {
			s.DifficultWords++
		}
	}
	s.Sentences = a.SentenceCount
	if s.Words > 0 && s.Sentences == 0 {
		s.Sentences = 1
	}
	return s
}

// ScoreDoc is the shared-analysis analogue of Score: AnalyzeDoc + Compute.
func ScoreDoc(a *textutil.Analysis) Scores { return Compute(AnalyzeDoc(a)) }

// Scores bundles the readability metrics for one text.
type Scores struct {
	// FleschReadingEase: 0 (very hard) .. ~100 (very easy). News prose is
	// typically 50-70.
	FleschReadingEase float64
	// FleschKincaidGrade: US school grade level.
	FleschKincaidGrade float64
	// GunningFog: years of formal education needed.
	GunningFog float64
	// SMOG: grade estimate from polysyllable density.
	SMOG float64
	// ColemanLiau: grade estimate from letters/words/sentences.
	ColemanLiau float64
	// ARI: Automated Readability Index grade estimate.
	ARI float64
	// DaleChall: adjusted Dale–Chall score (4.9 and below ≈ grade 4,
	// 9.0-9.9 ≈ college).
	DaleChall float64
}

// Compute derives all scores from precomputed stats. Degenerate inputs
// (no words or no sentences) return the zero Scores.
func Compute(s Stats) Scores {
	if s.Words == 0 || s.Sentences == 0 {
		return Scores{}
	}
	w := float64(s.Words)
	sent := float64(s.Sentences)
	syl := float64(s.Syllables)
	poly := float64(s.Polysyllables)
	letters := float64(s.Letters)
	difficult := float64(s.DifficultWords)

	wordsPerSentence := w / sent
	syllablesPerWord := syl / w

	var sc Scores
	sc.FleschReadingEase = 206.835 - 1.015*wordsPerSentence - 84.6*syllablesPerWord
	sc.FleschKincaidGrade = 0.39*wordsPerSentence + 11.8*syllablesPerWord - 15.59
	sc.GunningFog = 0.4 * (wordsPerSentence + 100*poly/w)
	// SMOG is defined for >= 30 sentences; the standard small-sample form
	// still uses the same constants.
	sc.SMOG = 1.0430*math.Sqrt(poly*30/sent) + 3.1291
	l := letters / w * 100 // letters per 100 words
	st := sent / w * 100   // sentences per 100 words
	sc.ColemanLiau = 0.0588*l - 0.296*st - 15.8
	sc.ARI = 4.71*(letters/w) + 0.5*wordsPerSentence - 21.43
	pdw := difficult / w * 100 // percentage difficult words
	sc.DaleChall = 0.1579*pdw + 0.0496*wordsPerSentence
	if pdw > 5 {
		sc.DaleChall += 3.6365
	}
	return sc
}

// Score is the convenience entry point: Analyze + Compute.
func Score(text string) Scores { return Compute(Analyze(text)) }

// GradeConsensus returns the median of the grade-level metrics
// (Flesch–Kincaid, Gunning-Fog, SMOG, Coleman–Liau, ARI), a robust single
// number for dashboards.
func GradeConsensus(sc Scores) float64 {
	grades := []float64{sc.FleschKincaidGrade, sc.GunningFog, sc.SMOG, sc.ColemanLiau, sc.ARI}
	// Insertion sort (5 elements).
	for i := 1; i < len(grades); i++ {
		for j := i; j > 0 && grades[j] < grades[j-1]; j-- {
			grades[j], grades[j-1] = grades[j-1], grades[j]
		}
	}
	return grades[2]
}
