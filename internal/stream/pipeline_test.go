package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collectProcessor records processed envelopes and answers with a
// configurable per-envelope verdict.
type collectProcessor struct {
	mu      sync.Mutex
	byKey   map[string][]string // key -> payloads in processing order
	verdict func(env Envelope) Result
	batches [][]string
}

func newCollectProcessor(verdict func(env Envelope) Result) *collectProcessor {
	if verdict == nil {
		verdict = func(Envelope) Result { return Result{Outcome: OutcomeCommitted} }
	}
	return &collectProcessor{byKey: make(map[string][]string), verdict: verdict}
}

func (c *collectProcessor) process(_ int, batch []Envelope) []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	results := make([]Result, len(batch))
	var keys []string
	for i, env := range batch {
		c.byKey[env.Key] = append(c.byKey[env.Key], string(env.Payload))
		keys = append(keys, env.Key)
		results[i] = c.verdict(env)
	}
	c.batches = append(c.batches, keys)
	return results
}

func TestPipelinePerKeyOrdering(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{Shards: 4, MaxBatch: 8, Process: proc.process})
	defer p.Close()

	const keys, perKey = 16, 50
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", k)
			for i := 0; i < perKey; i++ {
				if err := p.Enqueue(key, []byte(fmt.Sprintf("%d", i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(k)
	}
	wg.Wait()
	p.Flush()

	proc.mu.Lock()
	defer proc.mu.Unlock()
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%d", k)
		got := proc.byKey[key]
		if len(got) != perKey {
			t.Fatalf("key %s: processed %d of %d", key, len(got), perKey)
		}
		for i, v := range got {
			if v != fmt.Sprintf("%d", i) {
				t.Fatalf("key %s: out of order at %d: %q", key, i, v)
			}
		}
	}
	st := p.Stats()
	if st.Committed != keys*perKey || st.Enqueued != keys*perKey {
		t.Errorf("stats: %+v", st)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight after flush: %d", st.Inflight)
	}
}

func TestPipelineShedVsBlock(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{Shards: 1, QueueCapacity: 4, MaxBatch: 4, Process: proc.process})
	defer p.Close()

	// Paused workers make the capacity bound observable deterministically.
	p.Pause()
	for i := 0; i < 4; i++ {
		if err := p.TryEnqueue("k", []byte("x")); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := p.TryEnqueue("k", []byte("x")); !errors.Is(err, ErrFull) {
		t.Fatalf("shed mode on full queue: %v", err)
	}
	if p.Stats().Shed != 1 {
		t.Errorf("shed counter: %+v", p.Stats())
	}

	// Block mode parks the producer until the workers free capacity.
	unblocked := make(chan error, 1)
	go func() { unblocked <- p.Enqueue("k", []byte("blocked")) }()
	select {
	case err := <-unblocked:
		t.Fatalf("Enqueue returned on a full paused queue: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	p.Resume()
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue never unblocked after Resume")
	}
	p.Flush()
	if got := p.Stats().Committed; got != 5 {
		t.Errorf("committed %d, want 5", got)
	}
}

func TestPipelineRetryThenDeadLetter(t *testing.T) {
	var deadEnv Envelope
	var deadErr error
	var deadCount atomic.Int64
	failure := errors.New("transient store failure")
	proc := newCollectProcessor(func(Envelope) Result {
		return Result{Outcome: OutcomeRetry, Err: failure}
	})
	p := NewPipeline(PipelineConfig{
		Shards: 1, MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
		Process: proc.process,
		OnDead: func(env Envelope, err error) {
			deadEnv, deadErr = env, err
			deadCount.Add(1)
		},
	})
	defer p.Close()

	if err := p.Enqueue("k", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if deadCount.Load() != 1 {
		t.Fatalf("dead letters: %d", deadCount.Load())
	}
	if string(deadEnv.Payload) != "doomed" || deadEnv.Attempt != 3 {
		t.Errorf("dead envelope: %+v", deadEnv)
	}
	if !errors.Is(deadErr, failure) {
		t.Errorf("dead reason: %v", deadErr)
	}
	st := p.Stats()
	// 3 attempts = initial + 2 re-injections before the budget runs out.
	if st.Retried != 2 || st.DeadLettered != 1 || st.Committed != 0 {
		t.Errorf("stats: %+v", st)
	}
	proc.mu.Lock()
	attempts := len(proc.byKey["k"])
	proc.mu.Unlock()
	if attempts != 3 {
		t.Errorf("processed %d times, want 3", attempts)
	}
}

func TestPipelineRetrySucceedsBeforeBudget(t *testing.T) {
	var calls atomic.Int64
	proc := newCollectProcessor(func(Envelope) Result {
		if calls.Add(1) < 3 {
			return Result{Outcome: OutcomeRetry, Err: errors.New("not yet")}
		}
		return Result{Outcome: OutcomeCommitted}
	})
	p := NewPipeline(PipelineConfig{
		Shards: 1, MaxAttempts: 5, Backoff: time.Millisecond,
		Process: proc.process,
		OnDead:  func(Envelope, error) { t.Error("dead-lettered a recoverable envelope") },
	})
	defer p.Close()
	if err := p.Enqueue("k", []byte("flaky")); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if st := p.Stats(); st.Committed != 1 || st.Retried != 2 || st.DeadLettered != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestPipelineEnqueueCtxCancelUnblocks(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{Shards: 1, QueueCapacity: 1, Process: proc.process})
	defer p.Close()
	p.Pause()
	if err := p.Enqueue("k", []byte("fill")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	unblocked := make(chan error, 1)
	go func() { unblocked <- p.EnqueueCtx(ctx, "k", []byte("parked")) }()
	select {
	case err := <-unblocked:
		t.Fatalf("EnqueueCtx returned on a full paused queue: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-unblocked:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled enqueue: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("EnqueueCtx never unblocked on cancellation")
	}
	// The cancelled envelope was never accepted: draining commits one.
	p.Resume()
	p.Flush()
	if st := p.Stats(); st.Committed != 1 || st.Enqueued != 1 {
		t.Errorf("stats after cancel: %+v", st)
	}
}

func TestPipelineEnqueueNotifyWaitsFinalOutcome(t *testing.T) {
	// Two retries before success: the wait group must release only at the
	// final outcome, not after the first failed attempt.
	var calls atomic.Int64
	p := NewPipeline(PipelineConfig{
		Shards: 1, MaxAttempts: 5, Backoff: time.Millisecond,
		Process: func(_ int, batch []Envelope) []Result {
			results := make([]Result, len(batch))
			for i := range batch {
				if calls.Add(1) < 3 {
					results[i] = Result{Outcome: OutcomeRetry, Err: errors.New("not yet")}
				}
			}
			return results
		},
	})
	defer p.Close()
	var done sync.WaitGroup
	if err := p.EnqueueNotify("k", []byte("x"), &done); err != nil {
		t.Fatal(err)
	}
	done.Wait()
	if st := p.Stats(); st.Committed != 1 || st.Retried != 2 {
		t.Errorf("stats after notify wait: %+v", st)
	}
}

func TestPipelineCloseRejectsAndDrains(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{Shards: 2, Process: proc.process})
	for i := 0; i < 100; i++ {
		if err := p.Enqueue(fmt.Sprintf("k%d", i%7), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if err := p.Enqueue("k", []byte("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("enqueue after close: %v", err)
	}
	if st := p.Stats(); st.Committed != 100 || st.Inflight != 0 {
		t.Errorf("drain on close: %+v", st)
	}
	p.Close() // idempotent
}

func TestPipelineMicroBatching(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{Shards: 1, MaxBatch: 16, Process: proc.process})
	defer p.Close()
	p.Pause()
	for i := 0; i < 40; i++ {
		if err := p.Enqueue("k", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if d := p.Depth(); d != 40 {
		t.Fatalf("depth while paused: %d", d)
	}
	p.Resume()
	p.Flush()
	proc.mu.Lock()
	defer proc.mu.Unlock()
	// A paused backlog of 40 with MaxBatch 16 must drain in ≥1 multi-event
	// batches, none exceeding the bound.
	if len(proc.batches) >= 40 {
		t.Errorf("no batching: %d batches for 40 events", len(proc.batches))
	}
	for _, batch := range proc.batches {
		if len(batch) > 16 {
			t.Errorf("batch exceeds MaxBatch: %d", len(batch))
		}
	}
}

func TestPipelineShortResultSliceCommits(t *testing.T) {
	p := NewPipeline(PipelineConfig{
		Shards:  1,
		Process: func(_ int, batch []Envelope) []Result { return nil },
	})
	defer p.Close()
	if err := p.Enqueue("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	if st := p.Stats(); st.Committed != 1 {
		t.Errorf("missing results must default to committed: %+v", st)
	}
}

func TestBusFanOutAndSlowSubscriber(t *testing.T) {
	b := NewBus()
	fast := b.Subscribe(8)
	slow := b.Subscribe(1)
	for i := 0; i < 4; i++ {
		b.Publish([]byte(fmt.Sprintf("m%d", i)))
	}
	for i := 0; i < 4; i++ {
		select {
		case got := <-fast.C:
			if string(got) != fmt.Sprintf("m%d", i) {
				t.Errorf("fast subscriber order: %s", got)
			}
		default:
			t.Fatalf("fast subscriber missing message %d", i)
		}
	}
	// The slow subscriber's buffer of 1 keeps the first message, drops the
	// other three.
	if got := <-slow.C; string(got) != "m0" {
		t.Errorf("slow subscriber head: %s", got)
	}
	if slow.Dropped() != 3 {
		t.Errorf("slow dropped: %d", slow.Dropped())
	}
	st := b.Stats()
	if st.Published != 4 || st.Dropped != 3 || st.Subscribers != 2 {
		t.Errorf("bus stats: %+v", st)
	}
	fast.Cancel()
	fast.Cancel() // idempotent
	if b.Subscribers() != 1 {
		t.Errorf("subscribers after cancel: %d", b.Subscribers())
	}
	if _, open := <-fast.C; open {
		t.Error("cancelled channel still open")
	}
	b.Close()
	if _, open := <-slow.C; open {
		t.Error("bus close must close subscriber channels")
	}
	if b.Publish([]byte("late")) != 0 {
		t.Error("publish after close delivered")
	}
}
