package stream

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestPerKeyOrderProperty verifies the broker's core delivery invariant
// for arbitrary publish sequences: messages sharing a routing key are
// consumed in publish order (they land in one partition, and partitions
// are append-only logs). Cross-key order is unspecified.
func TestPerKeyOrderProperty(t *testing.T) {
	f := func(keys []uint8, partitions uint8) bool {
		if len(keys) == 0 {
			return true
		}
		nparts := int(partitions%7) + 1
		b := NewBroker()
		if err := b.CreateTopic("t", TopicConfig{Partitions: nparts, Capacity: len(keys) + 1}); err != nil {
			t.Log(err)
			return false
		}
		// Publish: payload records (key, per-key sequence).
		seq := map[uint8]int{}
		for _, k := range keys {
			payload := fmt.Sprintf("%d:%d", k, seq[k])
			seq[k]++
			if _, err := b.Publish("t", fmt.Sprintf("key-%d", k), []byte(payload)); err != nil {
				t.Log(err)
				return false
			}
		}
		// Consume everything with one group.
		c, err := b.Subscribe("t", "g")
		if err != nil {
			t.Log(err)
			return false
		}
		defer c.Close()
		msgs, err := c.Poll(len(keys) * 2)
		if err != nil || len(msgs) != len(keys) {
			t.Logf("polled %d of %d (%v)", len(msgs), len(keys), err)
			return false
		}
		// Per key, sequence numbers must arrive ascending.
		next := map[string]int{}
		for _, m := range msgs {
			var k, s int
			if _, err := fmt.Sscanf(string(m.Payload), "%d:%d", &k, &s); err != nil {
				t.Log(err)
				return false
			}
			key := fmt.Sprintf("key-%d", k)
			if m.Key != key {
				t.Logf("key mismatch: %q vs %q", m.Key, key)
				return false
			}
			if s != next[key] {
				t.Logf("key %s: got seq %d want %d", key, s, next[key])
				return false
			}
			next[key]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCommitMonotoneProperty: redelivery after Reset never yields messages
// from before the last commit, for arbitrary commit points.
func TestCommitMonotoneProperty(t *testing.T) {
	f := func(total, commitAt uint8) bool {
		n := int(total%64) + 1
		cut := int(commitAt) % (n + 1)
		b := NewBroker()
		if err := b.CreateTopic("t", TopicConfig{Partitions: 1, Capacity: n + 1}); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := b.Publish("t", "k", []byte{byte(i)}); err != nil {
				return false
			}
		}
		c, err := b.Subscribe("t", "g")
		if err != nil {
			return false
		}
		defer c.Close()
		first, err := c.Poll(cut)
		if err != nil {
			return false
		}
		if cut > 0 && len(first) == 0 {
			return false
		}
		if err := c.Commit(); err != nil {
			return false
		}
		if err := c.Reset(); err != nil { // crash after commit
			return false
		}
		rest, err := c.Poll(n * 2)
		if err != nil {
			return false
		}
		if len(first)+len(rest) != n {
			t.Logf("coverage: %d + %d != %d", len(first), len(rest), n)
			return false
		}
		for i, m := range rest {
			if int(m.Payload[0]) != len(first)+i {
				t.Logf("redelivered wrong message: %d at %d", m.Payload[0], i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
