// Package stream implements the streaming entry of the SciLens platform
// (paper §3.3). The original system wraps the commercial Datastreamer API
// as a messaging queue; this package provides the equivalent embedded
// building blocks:
//
//   - Broker: named topics split into partitions, key-hash routing,
//     consumer groups with committed offsets (at-least-once delivery),
//     bounded partitions with producer backpressure, blocking polls.
//   - Pipeline: the asynchronous staged ingestion engine — sharded bounded
//     queues feeding micro-batched processing with per-key ordering,
//     caller-selectable backpressure (block or shed), capped-backoff
//     retries and dead-letter handoff.
//   - Bus: in-process pub/sub fan-out for the live assessment feed.
package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// keyHash is allocation-free FNV-1a over the key — the one routing hash
// shared by broker partition routing and pipeline sharding, so the two
// cannot drift.
func keyHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// Sentinel errors.
var (
	// ErrNotFound is returned for unknown topics.
	ErrNotFound = errors.New("stream: topic not found")
	// ErrExists is returned when creating a topic that already exists.
	ErrExists = errors.New("stream: topic already exists")
	// ErrFull is returned by TryPublish when the partition is at capacity.
	ErrFull = errors.New("stream: partition full")
	// ErrClosed is returned when using a closed broker or consumer.
	ErrClosed = errors.New("stream: closed")
	// ErrConfig is returned for invalid topic configuration.
	ErrConfig = errors.New("stream: invalid configuration")
)

// Message is one queued record.
type Message struct {
	// Topic is the topic the message was published to.
	Topic string
	// Partition is the partition index within the topic.
	Partition int
	// Offset is the message's position within its partition.
	Offset int64
	// Key is the routing key (outlet account id in SciLens).
	Key string
	// Payload is the opaque message body.
	Payload []byte
	// Time is the broker-assigned publish timestamp.
	Time time.Time
}

// partition is one bounded append-only log.
type partition struct {
	mu        sync.Mutex
	notEmpty  *sync.Cond
	notFull   *sync.Cond
	buf       []Message // ring of retained messages
	first     int64     // offset of buf[0]
	next      int64     // next offset to assign
	capacity  int
	committed map[string]int64 // group -> next offset to read after commit
	closed    bool
}

func newPartition(capacity int) *partition {
	p := &partition{capacity: capacity, committed: make(map[string]int64)}
	p.notEmpty = sync.NewCond(&p.mu)
	p.notFull = sync.NewCond(&p.mu)
	return p
}

// minCommitted returns the smallest committed offset across groups, or
// `first` when no group has committed yet (retain everything unread).
func (p *partition) minCommitted() int64 {
	min := p.next
	for _, off := range p.committed {
		if off < min {
			min = off
		}
	}
	if len(p.committed) == 0 {
		return p.first
	}
	return min
}

// gc drops messages consumed by every group, freeing capacity.
func (p *partition) gc() {
	min := p.minCommitted()
	for p.first < min && len(p.buf) > 0 {
		p.buf = p.buf[1:]
		p.first++
	}
}

func (p *partition) publish(m Message, block bool, clock func() time.Time) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) >= p.capacity {
		p.gc()
		if len(p.buf) < p.capacity {
			break
		}
		if !block {
			return 0, ErrFull
		}
		if p.closed {
			return 0, ErrClosed
		}
		p.notFull.Wait()
	}
	if p.closed {
		return 0, ErrClosed
	}
	m.Offset = p.next
	m.Time = clock()
	p.buf = append(p.buf, m)
	p.next++
	p.notEmpty.Broadcast()
	return m.Offset, nil
}

// read returns up to max messages starting at offset `from`, without
// blocking. Offsets below the retention window are skipped forward.
func (p *partition) read(from int64, max int) ([]Message, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < p.first {
		from = p.first
	}
	start := int(from - p.first)
	if start >= len(p.buf) {
		return nil, from
	}
	end := start + max
	if end > len(p.buf) {
		end = len(p.buf)
	}
	out := make([]Message, end-start)
	copy(out, p.buf[start:end])
	return out, from + int64(len(out))
}

func (p *partition) commit(group string, offset int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.committed[group]; !ok || offset > cur {
		p.committed[group] = offset
	}
	p.gc()
	p.notFull.Broadcast()
}

func (p *partition) committedFor(group string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed[group]
}

// register makes the group visible to retention: messages are kept until
// every registered group commits past them.
func (p *partition) register(group string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.committed[group]; !ok {
		p.committed[group] = p.first
	}
}

func (p *partition) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.notEmpty.Broadcast()
	p.notFull.Broadcast()
}

// lag returns next - committed for a group.
func (p *partition) lag(group string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next - p.committed[group]
}

// topic is a set of partitions.
type topic struct {
	name  string
	parts []*partition
}

// TopicConfig configures CreateTopic.
type TopicConfig struct {
	// Partitions is the partition count (default 4).
	Partitions int
	// Capacity is the per-partition retention bound (default 4096).
	// Producers block (or fail with TryPublish) when a partition holds
	// this many messages not yet consumed by every group.
	Capacity int
}

// Broker is the embedded message broker. All methods are safe for
// concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
	clock  func() time.Time
	closed bool
}

// NewBroker creates a broker using the real clock.
func NewBroker() *Broker { return NewBrokerWithClock(time.Now) } //scilint:ignore determinism production default only; NewBrokerWithClock is the injection point

// NewBrokerWithClock creates a broker with an injectable clock (virtual
// time in experiments).
func NewBrokerWithClock(clock func() time.Time) *Broker {
	return &Broker{topics: make(map[string]*topic), clock: clock}
}

// CreateTopic declares a topic.
func (b *Broker) CreateTopic(name string, cfg TopicConfig) error {
	if name == "" {
		return fmt.Errorf("empty topic name: %w", ErrConfig)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if _, dup := b.topics[name]; dup {
		return fmt.Errorf("topic %q: %w", name, ErrExists)
	}
	t := &topic{name: name}
	for i := 0; i < cfg.Partitions; i++ {
		t.parts = append(t.parts, newPartition(cfg.Capacity))
	}
	b.topics[name] = t
	return nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return nil, ErrClosed
	}
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("topic %q: %w", name, ErrNotFound)
	}
	return t, nil
}

// routePartition picks the partition for a key (FNV hash; empty keys go to
// partition 0).
func (t *topic) routePartition(key string) int {
	if key == "" {
		return 0
	}
	return int(keyHash(key) % uint32(len(t.parts)))
}

// Publish appends a message, blocking while the target partition is full.
// It returns the assigned offset.
func (b *Broker) Publish(topicName, key string, payload []byte) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	pi := t.routePartition(key)
	return t.parts[pi].publish(Message{Topic: topicName, Partition: pi, Key: key, Payload: payload}, true, b.clock)
}

// TryPublish appends a message or fails immediately with ErrFull.
func (b *Broker) TryPublish(topicName, key string, payload []byte) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	pi := t.routePartition(key)
	return t.parts[pi].publish(Message{Topic: topicName, Partition: pi, Key: key, Payload: payload}, false, b.clock)
}

// Close shuts the broker down, waking all blocked producers and consumers.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for _, t := range b.topics {
		for _, p := range t.parts {
			p.close()
		}
	}
}

// Lag returns the total unconsumed message count for a group on a topic.
func (b *Broker) Lag(topicName, group string) (int64, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range t.parts {
		total += p.lag(group)
	}
	return total, nil
}

// Consumer reads a topic on behalf of a consumer group. It tracks a
// per-partition read position, starting at the group's committed offsets.
// Poll advances the position; Commit persists it; Reset rewinds to the last
// commit (the crash/redelivery path that makes delivery at-least-once).
//
// A Consumer is not safe for concurrent use; create one per goroutine in
// the same group — partitions are split statically between them.
type Consumer struct {
	b        *Broker
	t        *topic
	group    string
	parts    []int // partition indexes this consumer owns
	position map[int]int64
	closed   bool
}

// Subscribe creates a consumer owning every partition of the topic.
func (b *Broker) Subscribe(topicName, group string) (*Consumer, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	parts := make([]int, len(t.parts))
	for i := range parts {
		parts[i] = i
	}
	return b.subscribeParts(t, group, parts)
}

// SubscribeShard creates a consumer owning the partitions assigned to
// member `member` of `members` total (static group balancing: partition p
// belongs to member p % members).
func (b *Broker) SubscribeShard(topicName, group string, member, members int) (*Consumer, error) {
	if members <= 0 || member < 0 || member >= members {
		return nil, fmt.Errorf("bad shard %d/%d: %w", member, members, ErrConfig)
	}
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	var parts []int
	for i := range t.parts {
		if i%members == member {
			parts = append(parts, i)
		}
	}
	return b.subscribeParts(t, group, parts)
}

func (b *Broker) subscribeParts(t *topic, group string, parts []int) (*Consumer, error) {
	c := &Consumer{b: b, t: t, group: group, parts: parts, position: make(map[int]int64)}
	for _, pi := range parts {
		t.parts[pi].register(group)
		c.position[pi] = t.parts[pi].committedFor(group)
	}
	return c, nil
}

// Poll returns up to max messages across the consumer's partitions without
// blocking, advancing the in-memory position past everything returned.
func (c *Consumer) Poll(max int) ([]Message, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if max <= 0 {
		max = 128
	}
	var out []Message
	for _, pi := range c.parts {
		if len(out) >= max {
			break
		}
		msgs, newPos := c.t.parts[pi].read(c.position[pi], max-len(out))
		c.position[pi] = newPos
		out = append(out, msgs...)
	}
	return out, nil
}

// PollWait behaves like Poll but blocks up to timeout for at least one
// message. A zero or negative timeout polls exactly once.
func (c *Consumer) PollWait(max int, timeout time.Duration) ([]Message, error) {
	// The wait deadline is cadence, not data: it bounds how long the
	// caller parks, and no message content or stored row depends on it.
	deadline := time.Now().Add(timeout) //scilint:ignore determinism poll-wait deadline is cadence, not data
	for {
		msgs, err := c.Poll(max)
		if err != nil || len(msgs) > 0 {
			return msgs, err
		}
		if timeout <= 0 || time.Now().After(deadline) { //scilint:ignore determinism poll-wait deadline is cadence, not data
			return nil, nil
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Commit persists the consumer's position for its group; everything
// polled so far will not be redelivered.
func (c *Consumer) Commit() error {
	if c.closed {
		return ErrClosed
	}
	for _, pi := range c.parts {
		c.t.parts[pi].commit(c.group, c.position[pi])
	}
	return nil
}

// Reset rewinds the read position to the last committed offsets, causing
// redelivery of uncommitted messages (the simulated consumer crash).
func (c *Consumer) Reset() error {
	if c.closed {
		return ErrClosed
	}
	for _, pi := range c.parts {
		c.position[pi] = c.t.parts[pi].committedFor(c.group)
	}
	return nil
}

// Close releases the consumer.
func (c *Consumer) Close() { c.closed = true }
