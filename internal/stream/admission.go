package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrThrottled marks a per-source admission rejection: the source spent
// both its steady and burst token budgets. Match with errors.Is; the
// concrete *ThrottleError carries the retry hint.
var ErrThrottled = errors.New("stream: source throttled")

// ThrottleError is an admission rejection. RetryAfter is the time until
// the source's buckets next hold a whole token — the honest Retry-After
// value for a 429 response.
type ThrottleError struct {
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("stream: source throttled (retry after %s)", e.RetryAfter)
}

// Is makes errors.Is(err, ErrThrottled) match any ThrottleError.
func (e *ThrottleError) Is(target error) bool { return target == ErrThrottled }

// AdmissionConfig configures per-source token-bucket admission. Each
// source refills two buckets against the injected clock: the steady
// bucket admits SteadyRate events/sec into the steady lane; once it runs
// dry the burst bucket admits BurstRate more into the lower-weight burst
// lane; past both the source is throttled. A viral story therefore
// degrades itself in stages — first to the burst lane, then to 429s —
// while every other source's steady admission is untouched.
//
// Sources are outlet hosts, a bounded registry, so the per-source state
// map is bounded too.
type AdmissionConfig struct {
	// SteadyRate is the sustained per-source rate (events/sec) admitted
	// to the steady lane (default 100).
	SteadyRate float64
	// SteadyDepth is the steady bucket's capacity — the burst a quiet
	// source may spend at once (default 2×SteadyRate).
	SteadyDepth float64
	// BurstRate is the additional per-source rate admitted to the burst
	// lane once the steady bucket is empty (default SteadyRate).
	BurstRate float64
	// BurstDepth is the burst bucket's capacity (default 4×BurstRate).
	BurstDepth float64
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.SteadyRate <= 0 {
		c.SteadyRate = 100
	}
	if c.SteadyDepth <= 0 {
		c.SteadyDepth = 2 * c.SteadyRate
	}
	if c.BurstRate <= 0 {
		c.BurstRate = c.SteadyRate
	}
	if c.BurstDepth <= 0 {
		c.BurstDepth = 4 * c.BurstRate
	}
	return c
}

// admission is the per-source token-bucket state shared by the
// source-aware enqueue paths.
type admission struct {
	cfg AdmissionConfig
	now func() time.Time

	obsSteady    *obs.Counter
	obsBurst     *obs.Counter
	obsThrottled *obs.Counter

	mu      sync.Mutex
	sources map[string]*sourceBuckets
}

type sourceBuckets struct {
	steady float64
	burst  float64
	lastNs int64

	admittedSteady uint64
	admittedBurst  uint64
	throttled      uint64
}

type admitDecision struct {
	lane       lane
	throttled  bool
	retryAfter time.Duration
}

func newAdmission(cfg AdmissionConfig, now func() time.Time) *admission {
	return &admission{
		cfg:          cfg.withDefaults(),
		now:          now,
		obsSteady:    mAdmission.With("steady"),
		obsBurst:     mAdmission.With("burst"),
		obsThrottled: mAdmission.With("throttled"),
		sources:      make(map[string]*sourceBuckets),
	}
}

// admit refills the source's buckets to the injected clock and spends one
// token: steady first, burst overflow second, throttled past both.
func (a *admission) admit(source string) admitDecision {
	nowNs := a.now().UnixNano()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.sources[source]
	if b == nil {
		b = &sourceBuckets{steady: a.cfg.SteadyDepth, burst: a.cfg.BurstDepth, lastNs: nowNs}
		a.sources[source] = b
	}
	if dt := float64(nowNs-b.lastNs) / float64(time.Second); dt > 0 {
		b.steady = min(b.steady+dt*a.cfg.SteadyRate, a.cfg.SteadyDepth)
		b.burst = min(b.burst+dt*a.cfg.BurstRate, a.cfg.BurstDepth)
	}
	b.lastNs = nowNs
	switch {
	case b.steady >= 1:
		b.steady--
		b.admittedSteady++
		a.obsSteady.Inc()
		return admitDecision{lane: LaneSteady}
	case b.burst >= 1:
		b.burst--
		b.admittedBurst++
		a.obsBurst.Inc()
		return admitDecision{lane: LaneBurst}
	default:
		b.throttled++
		a.obsThrottled.Inc()
		wait := (1 - b.steady) / a.cfg.SteadyRate
		if w := (1 - b.burst) / a.cfg.BurstRate; w < wait {
			wait = w
		}
		return admitDecision{throttled: true, retryAfter: time.Duration(wait * float64(time.Second))}
	}
}

// SourceAdmission is one source's admission counters.
type SourceAdmission struct {
	Source string `json:"source"`
	// Steady and Burst count events admitted into each lane; Throttled
	// counts rejections.
	Steady    uint64 `json:"steady"`
	Burst     uint64 `json:"burst"`
	Throttled uint64 `json:"throttled"`
}

func (a *admission) stats() []SourceAdmission {
	a.mu.Lock()
	out := make([]SourceAdmission, 0, len(a.sources))
	for src, b := range a.sources {
		out = append(out, SourceAdmission{
			Source: src, Steady: b.admittedSteady, Burst: b.admittedBurst, Throttled: b.throttled,
		})
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}
