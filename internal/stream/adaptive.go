package stream

import "time"

// AdaptiveConfig configures the pipeline's self-tuning controller. Each
// tick reads one signal — the mean queue-fill fraction across shards —
// and turns two knobs at different speeds. Micro-batching adapts fast and
// in both directions: backlog widens the batch ceiling toward MaxBatch
// (commit amortisation), shallow queues shrink it toward MinBatch
// (latency). Resharding adapts slowly and with hysteresis: GrowAfter
// consecutive pressured ticks double the shard set, ShrinkAfter
// consecutive idle ticks halve it — growth is eager because a burst is
// hurting now, shrink is reluctant because a transition has a cost and
// bursts recur.
type AdaptiveConfig struct {
	// Enabled turns the controller on. The zero value leaves the pipeline
	// static (the pre-adaptive behaviour).
	Enabled bool
	// MinShards and MaxShards bound resharding (defaults: the assembly
	// Shards count and 4× it).
	MinShards int
	MaxShards int
	// MinBatch and MaxBatch bound the micro-batch ceiling (defaults: the
	// assembly MaxBatch and 8× it).
	MinBatch int
	MaxBatch int
	// Interval is the production tick cadence (default 250ms). Negative
	// disables the background ticker while leaving the controller enabled,
	// so tests drive AdaptTick deterministically.
	Interval time.Duration
	// HighWater and LowWater are the mean queue-fill fractions that count
	// as pressure and as slack (defaults 0.5 and 0.05).
	HighWater float64
	LowWater  float64
	// GrowAfter and ShrinkAfter are the consecutive pressured (idle) tick
	// counts before the shard set doubles (halves); defaults 2 and 40.
	GrowAfter   int
	ShrinkAfter int
}

// withDefaults resolves the bounds against the (already-defaulted)
// pipeline config.
func (ad AdaptiveConfig) withDefaults(cfg PipelineConfig) AdaptiveConfig {
	if !ad.Enabled {
		return ad
	}
	if ad.MinShards <= 0 {
		ad.MinShards = cfg.Shards
	}
	if ad.MaxShards < ad.MinShards {
		ad.MaxShards = 4 * cfg.Shards
	}
	if ad.MaxShards < ad.MinShards {
		ad.MaxShards = ad.MinShards
	}
	if ad.MinBatch <= 0 {
		ad.MinBatch = cfg.MaxBatch
	}
	if ad.MaxBatch < ad.MinBatch {
		ad.MaxBatch = 8 * cfg.MaxBatch
	}
	if ad.MaxBatch < ad.MinBatch {
		ad.MaxBatch = ad.MinBatch
	}
	if ad.Interval == 0 {
		ad.Interval = 250 * time.Millisecond
	}
	if ad.HighWater <= 0 {
		ad.HighWater = 0.5
	}
	if ad.LowWater <= 0 {
		ad.LowWater = 0.05
	}
	if ad.GrowAfter <= 0 {
		ad.GrowAfter = 2
	}
	if ad.ShrinkAfter <= 0 {
		ad.ShrinkAfter = 40
	}
	return ad
}

// AdaptTick runs one controller step against the current queue state.
// Exported so tests drive the controller deterministically; the
// production loop calls it on a ticker. Single-caller by contract — the
// ticker goroutine or the test, never both.
func (p *Pipeline) AdaptTick() {
	ad := p.cfg.Adaptive
	if !ad.Enabled {
		return
	}
	shards := p.Shards()
	fill := float64(p.Depth()) / float64(shards*p.cfg.QueueCapacity)

	cur := int(p.maxBatch.Load())
	switch {
	case fill >= ad.HighWater:
		if next := min(cur*2, ad.MaxBatch); next != cur {
			p.maxBatch.Store(int64(next))
			mBatchMax.Set(int64(next))
		}
	case fill <= ad.LowWater:
		if next := max(cur/2, ad.MinBatch); next != cur {
			p.maxBatch.Store(int64(next))
			mBatchMax.Set(int64(next))
		}
	}

	// Never stack transitions: while one is draining, the fill signal is
	// half about the old shard set and proves nothing about the new one.
	if p.Resharding() {
		return
	}
	switch {
	case fill >= ad.HighWater:
		p.adaptHigh++
		p.adaptLow = 0
		if p.adaptHigh >= ad.GrowAfter && shards < ad.MaxShards {
			p.adaptHigh = 0
			_ = p.Reshard(min(shards*2, ad.MaxShards))
		}
	case fill <= ad.LowWater:
		p.adaptLow++
		p.adaptHigh = 0
		if p.adaptLow >= ad.ShrinkAfter && shards > ad.MinShards {
			p.adaptLow = 0
			_ = p.Reshard(max(shards/2, ad.MinShards))
		}
	default:
		p.adaptHigh, p.adaptLow = 0, 0
	}
}

// adaptLoop is the production controller cadence. The ticker is cadence,
// not data: no stored row depends on when a tick fires, only queue-state
// telemetry does.
func (p *Pipeline) adaptLoop() {
	defer p.adaptWG.Done()
	t := time.NewTicker(p.cfg.Adaptive.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.adaptStop:
			return
		case <-t.C:
			p.AdaptTick()
		}
	}
}
