package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pipeline stage telemetry, labeled per shard. Handles are pre-registered
// at shard construction so the per-envelope record calls are
// allocation-free. Shard ids of removed shards are reused on later growth,
// so label cardinality stays bounded by the largest shard set ever run.
var (
	mQueueWait = obs.NewDurationHistogramVec("scilens_pipeline_queue_wait_seconds",
		"Time a first-delivery envelope spent queued on its shard before a worker drained it.", "shard")
	mRetryBackoff = obs.NewDurationHistogramVec("scilens_pipeline_retry_backoff_seconds",
		"Backoff delays scheduled for retried envelopes.", "shard")
	mDeadAge = obs.NewDurationHistogramVec("scilens_pipeline_dead_letter_age_seconds",
		"Envelope age (since first enqueue) at the moment of dead-lettering.", "shard")
	mBatchSize = obs.NewSizeHistogram("scilens_pipeline_batch_records",
		"Micro-batch sizes drained per processing round.")
	mShardCount = obs.NewGauge("scilens_pipeline_shards",
		"Current pipeline worker-shard count (moves under adaptive resharding).")
	mReshards = obs.NewCounter("scilens_pipeline_reshards_total",
		"Completed shard-set transitions, grow and shrink.")
	mBatchMax = obs.NewGauge("scilens_pipeline_batch_max",
		"Live micro-batch ceiling (MaxBatch when the adaptive controller is off).")
	mShed = obs.NewCounterVec("scilens_pipeline_shed_total",
		"Envelopes rejected at enqueue because a shard lane was full, by shard and lane.", "shard", "lane")
	mAdmission = obs.NewCounterVec("scilens_pipeline_admission_total",
		"Per-source admission decisions by outcome (steady, burst, throttled).", "decision")
)

// lane selects one of a shard's two priority queues. The steady lane
// carries baseline traffic; the burst lane carries a hot source's
// overflow, dequeued at lower weight so one viral story cannot starve
// every other source's feed.
type lane int

const (
	// LaneSteady is the default, higher-weight lane.
	LaneSteady lane = iota
	// LaneBurst is the lower-weight overflow lane admission routes a hot
	// source to once its steady budget is spent.
	LaneBurst
	numLanes
)

func (l lane) String() string {
	if l == LaneBurst {
		return "burst"
	}
	return "steady"
}

// Pipeline is the asynchronous staged-ingestion engine layered over the
// broker abstractions of this package: producers enqueue raw keyed
// envelopes onto sharded bounded queues (key routing preserves per-key
// ordering, e.g. an article's posting always precedes its reactions), and
// one worker per shard drains micro-batches through a caller-supplied
// batch processor. Per-envelope outcomes drive the rest of the machinery:
// failures retry on the same shard with capped exponential backoff and
// are handed to the dead-letter callback once the attempt budget is
// exhausted.
//
// Routing is rendezvous (highest-random-weight) hashing over a versioned
// shard set, so Reshard can grow or shrink the worker pool live — see
// Reshard for the ordering fence. Each shard runs two priority lanes
// drained under deficit-weighted round-robin; per-source token-bucket
// admission (PipelineConfig.Admission) decides which lane a source's
// traffic rides in, or throttles it outright.
//
// Backpressure is explicit and caller-selectable: Enqueue blocks while the
// target lane is at capacity, TryEnqueue sheds with ErrFull (the API
// layer's 429 path). Flush waits for every accepted envelope to reach a
// final outcome (committed or dead-lettered), which is what makes a
// graceful drain possible; Close drains and stops the workers.
type Pipeline struct {
	cfg PipelineConfig
	now func() time.Time
	wg  sync.WaitGroup

	// Routing state. active is the authoritative shard set; during a
	// transition next holds the target set and leaving the shards being
	// drained out. epoch stamps every envelope with the routing version it
	// was admitted under; transitions are serialised, so at most two
	// epochs are ever live and in-flight counts index by epoch parity.
	routerMu      sync.RWMutex
	active        []*pshard
	next          []*pshard
	leaving       []*pshard
	epoch         uint64
	epochInflight [2]atomic.Int64

	// Transition bookkeeping. transDone is closed when the pending
	// transition completes; Reshard waits on it before starting another.
	// The shard-id allocator lives here too: freed ids are reused
	// smallest-first so ids (and the telemetry labels they feed) never
	// exceed the largest set size.
	transMu       sync.Mutex
	transActive   atomic.Bool
	transPending  bool
	transOldEpoch uint64
	transDone     chan struct{}
	nextShardID   int
	freeShardIDs  []int

	// reshardMu serialises Reshard initiators (the adaptive controller
	// and any manual caller).
	reshardMu sync.Mutex

	// maxBatch is the live micro-batch ceiling; the adaptive controller
	// moves it, workers read it per drain round.
	maxBatch atomic.Int64

	sticky    stickyLanes
	admission *admission
	rate      drainRate

	// Adaptive-controller state; AdaptTick is the single writer.
	adaptHigh int
	adaptLow  int
	adaptStop chan struct{}
	adaptWG   sync.WaitGroup

	enqueued  atomic.Uint64
	shed      atomic.Uint64
	throttled atomic.Uint64
	commits   atomic.Uint64
	retries   atomic.Uint64
	dead      atomic.Uint64
	batches   atomic.Uint64
	reshards  atomic.Uint64

	// inflight counts envelopes accepted but not yet at a final outcome
	// (queued, in a batch, or waiting out a retry backoff). Flush waits for
	// it to reach zero.
	inflight atomic.Int64
	idleMu   sync.Mutex
	idleCond *sync.Cond

	paused atomic.Bool
	closed atomic.Bool
}

// Envelope is one raw event moving through the pipeline. Attempt counts
// completed processing attempts (0 on first delivery).
type Envelope struct {
	// Key is the routing key; envelopes sharing a key are processed in
	// enqueue order on one shard.
	Key string
	// Payload is the opaque event body.
	Payload []byte
	// Attempt is the number of failed processing attempts so far.
	Attempt int

	// lane is the priority lane the envelope was admitted to.
	lane lane
	// epoch is the routing-table version the envelope was admitted under;
	// the resharding fence waits on per-epoch in-flight counts.
	epoch uint64
	// notify, when set (EnqueueNotify), is marked done once the envelope
	// reaches its final outcome. It rides along through retries.
	notify *sync.WaitGroup
	// enqueuedNs is the clock's nanosecond stamp of the first enqueue; it
	// rides along through retries and feeds the queue-wait and
	// dead-letter-age telemetry.
	enqueuedNs int64
}

// Outcome classifies one envelope's processing result.
type Outcome int

const (
	// OutcomeCommitted marks the envelope fully processed.
	OutcomeCommitted Outcome = iota
	// OutcomeRetry schedules the envelope for re-processing after a capped
	// exponential backoff; once MaxAttempts is exhausted it dead-letters.
	OutcomeRetry
	// OutcomeDead dead-letters the envelope immediately (permanent
	// failures: malformed payloads, unparseable documents).
	OutcomeDead
)

// Result is one envelope's outcome from the batch processor. Err carries
// the failure reason for retries and dead letters.
type Result struct {
	Outcome Outcome
	Err     error
}

// PipelineConfig configures NewPipeline. Process is required; everything
// else has working defaults.
type PipelineConfig struct {
	// Shards is the initial queue/worker count (default 4). Per-key
	// ordering holds within a shard, so more shards buy parallelism
	// across keys. Reshard (and the adaptive controller) can change the
	// count live.
	Shards int
	// QueueCapacity bounds each shard lane's queue (default 1024). A full
	// lane blocks Enqueue and sheds TryEnqueue.
	QueueCapacity int
	// MaxBatch is the micro-batch size a worker drains per processing round
	// (default 64) — the amortisation unit for batched evaluation and
	// batched store commits. The adaptive controller treats it as the
	// starting point and moves the live ceiling between Adaptive.MinBatch
	// and Adaptive.MaxBatch.
	MaxBatch int
	// MaxAttempts is the per-envelope attempt budget before dead-lettering
	// (default 3).
	MaxAttempts int
	// Backoff is the first retry delay (default 5ms); each further attempt
	// doubles it up to MaxBackoff (default 250ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// SteadyWeight and BurstWeight are the deficit-round-robin dequeue
	// quanta of the two priority lanes (default 2 and 1): per scheduling
	// pass a backlogged steady lane is granted SteadyWeight envelopes for
	// every BurstWeight granted to a backlogged burst lane.
	SteadyWeight int
	BurstWeight  int
	// Admission, when set, enables per-source token-bucket admission on
	// the source-aware enqueue paths (EnqueueSource and friends). Nil
	// admits everything to the steady lane.
	Admission *AdmissionConfig
	// Adaptive configures the self-tuning controller; zero value = off.
	Adaptive AdaptiveConfig
	// Now is the injected clock used for envelope stamps, admission
	// refill, and the drain-rate estimator (default time.Now). Tests and
	// the platform inject a deterministic clock.
	Now func() time.Time
	// Process handles one micro-batch for one shard and returns one Result
	// per envelope, index-aligned (a short result slice treats the missing
	// tail as committed). It runs concurrently across shards and must be
	// safe for that. The shard argument is the shard's stable id.
	Process func(shard int, batch []Envelope) []Result
	// OnDead, when set, receives every dead-lettered envelope with its
	// final failure reason (the platform writes it to the dead_letters
	// table).
	OnDead func(env Envelope, err error)
}

// laneQueue is one priority lane's FIFO plus its deficit-round-robin
// credit balance.
type laneQueue struct {
	queue   []Envelope
	deficit int
}

// pshard is one worker shard: two bounded priority lanes, the retry
// re-injection buffer, and — during a reshard transition — the handoff
// buffer for keys moving onto this shard. ready holds envelopes whose
// backoff elapsed; they bypass the capacity bound (their slot was
// accounted for when first enqueued) and are drained ahead of the lanes.
type pshard struct {
	// id is the shard's stable identity: rendezvous scores hash it, the
	// batch processor and the telemetry labels receive it. Routing depends
	// only on the live id set, never on slice positions.
	id int

	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	lanes    [numLanes]laneQueue
	ready    []Envelope
	capacity int
	paused   bool
	stopped  bool
	draining bool

	// Resharding handoff. While a transition is pending, keys that move
	// to this shard under the next routing table buffer here (counted
	// against lane capacity via handoffLen) and splice into the live lanes
	// only when the fence lifts — that barrier is the per-key order
	// guarantee across the move. handoffEpoch pins the buffer to one
	// transition: an envelope delayed across a completed fence must never
	// park itself in a later transition's buffer, where its own (old)
	// epoch count would deadlock that later fence.
	handoff      []Envelope
	handoffLen   [numLanes]int
	handoffOpen  bool
	handoffEpoch uint64

	shed [numLanes]atomic.Uint64

	// Pre-registered telemetry handles for this shard's label set.
	obsQueueWait *obs.Histogram
	obsRetry     *obs.Histogram
	obsDead      *obs.Histogram
	obsShed      [numLanes]*obs.Counter
}

func newPshard(capacity, id int, paused bool) *pshard {
	label := strconv.Itoa(id)
	s := &pshard{
		id:           id,
		capacity:     capacity,
		paused:       paused,
		obsQueueWait: mQueueWait.With(label),
		obsRetry:     mRetryBackoff.With(label),
		obsDead:      mDeadAge.With(label),
	}
	for l := lane(0); l < numLanes; l++ {
		s.obsShed[l] = mShed.With(label, l.String())
	}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	return s
}

// NewPipeline builds and starts the pipeline workers.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 250 * time.Millisecond
	}
	if cfg.SteadyWeight <= 0 {
		cfg.SteadyWeight = 2
	}
	if cfg.BurstWeight <= 0 {
		cfg.BurstWeight = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now //scilint:ignore determinism production default only; tests and the platform inject their clock
	}
	cfg.Adaptive = cfg.Adaptive.withDefaults(cfg)
	p := &Pipeline{cfg: cfg, now: cfg.Now}
	p.idleCond = sync.NewCond(&p.idleMu)
	p.maxBatch.Store(int64(cfg.MaxBatch))
	mBatchMax.Set(int64(cfg.MaxBatch))
	p.sticky.init()
	if cfg.Admission != nil {
		p.admission = newAdmission(*cfg.Admission, p.now)
	}
	for i := 0; i < cfg.Shards; i++ {
		s := newPshard(cfg.QueueCapacity, i, false)
		p.active = append(p.active, s)
		p.wg.Add(1)
		go p.worker(s)
	}
	p.nextShardID = cfg.Shards
	mShardCount.Set(int64(cfg.Shards))
	if cfg.Adaptive.Enabled && cfg.Adaptive.Interval > 0 {
		p.adaptStop = make(chan struct{})
		p.adaptWG.Add(1)
		go p.adaptLoop()
	}
	return p
}

// route picks the envelope's shard under the current routing table and
// registers it against its epoch's in-flight count — atomically with the
// table read, under the router read-lock, so a transition beginning right
// after cannot miss the envelope in its fence. During a transition a key
// whose next-table winner differs from its current one is directed at the
// new winner with handoff=true: it must buffer behind the fence rather
// than enter the live queue ahead of its predecessors.
func (p *Pipeline) route(key string) (s *pshard, epoch uint64, handoff bool) {
	p.routerMu.RLock()
	defer p.routerMu.RUnlock()
	epoch = p.epoch
	p.epochInflight[epoch&1].Add(1)
	cur := rendezvous(key, p.active)
	if p.next == nil {
		return cur, epoch, false
	}
	tgt := rendezvous(key, p.next)
	if tgt == cur {
		return cur, epoch, false
	}
	return tgt, epoch, true
}

// unroute undoes route for an envelope that was never accepted (shed,
// cancelled, stale-routed); dropping the count may lift a pending fence.
func (p *Pipeline) unroute(epoch uint64) { p.retireEpoch(epoch) }

func (p *Pipeline) retireEpoch(epoch uint64) {
	if p.epochInflight[epoch&1].Add(-1) == 0 && p.transActive.Load() {
		p.maybeCompleteTransition(epoch)
	}
}

// Enqueue routes the envelope to its key's shard, blocking while the
// steady lane is at capacity (the backpressure-by-blocking mode).
func (p *Pipeline) Enqueue(key string, payload []byte) error {
	return p.enqueue(nil, "", key, payload, true, nil)
}

// EnqueueCtx behaves like Enqueue but stops waiting when ctx is cancelled,
// returning the context error — the shape request handlers need so an
// abandoned client cannot park a goroutine on a full shard forever.
func (p *Pipeline) EnqueueCtx(ctx context.Context, key string, payload []byte) error {
	return p.enqueue(ctx, "", key, payload, true, nil)
}

// EnqueueNotify behaves like Enqueue and additionally marks wg done when
// the envelope reaches its final outcome (committed or dead-lettered,
// after any retries) — the hook dead-letter replay uses to wait for its
// own envelopes without flushing the whole pipeline.
func (p *Pipeline) EnqueueNotify(key string, payload []byte, wg *sync.WaitGroup) error {
	return p.enqueue(nil, "", key, payload, true, wg)
}

// TryEnqueue routes the envelope to its key's shard, shedding with ErrFull
// when the lane is at capacity (the backpressure-by-load-shedding mode).
func (p *Pipeline) TryEnqueue(key string, payload []byte) error {
	return p.enqueue(nil, "", key, payload, false, nil)
}

// EnqueueSource behaves like Enqueue but first runs the envelope through
// per-source admission (when configured): the source's token buckets
// decide the lane, or reject with a ThrottleError carrying a retry hint.
func (p *Pipeline) EnqueueSource(source, key string, payload []byte) error {
	return p.enqueue(nil, source, key, payload, true, nil)
}

// EnqueueSourceCtx is EnqueueSource with context cancellation.
func (p *Pipeline) EnqueueSourceCtx(ctx context.Context, source, key string, payload []byte) error {
	return p.enqueue(ctx, source, key, payload, true, nil)
}

// TryEnqueueSource is EnqueueSource in load-shedding mode: a full lane
// sheds with ErrFull instead of blocking.
func (p *Pipeline) TryEnqueueSource(source, key string, payload []byte) error {
	return p.enqueue(nil, source, key, payload, false, nil)
}

func (p *Pipeline) enqueue(ctx context.Context, source, key string, payload []byte, block bool, notify *sync.WaitGroup) error {
	if p.closed.Load() {
		return ErrClosed
	}
	want := LaneSteady
	if p.admission != nil && source != "" {
		dec := p.admission.admit(source)
		if dec.throttled {
			p.throttled.Add(1)
			return &ThrottleError{RetryAfter: dec.retryAfter}
		}
		want = dec.lane
	}
	// A key with envelopes still queued keeps their lane: a cascade must
	// never straddle lanes, or the weighted scheduler could reorder it.
	l := p.sticky.acquire(key, want)
	for {
		s, epoch, handoff := p.route(key)
		ok, err := p.put(s, ctx, key, payload, l, epoch, handoff, block, notify)
		if err != nil {
			p.unroute(epoch)
			p.sticky.release(key)
			return err
		}
		if ok {
			return nil
		}
		// Stale route: the shard left the set between the table read and
		// the insert. Drop the stale epoch claim and route again.
		p.unroute(epoch)
	}
}

// put inserts the envelope on shard s, blocking (or shedding) while the
// lane is at capacity. ok=false with a nil error means the shard stopped
// under us and the caller should re-route.
func (p *Pipeline) put(s *pshard, ctx context.Context, key string, payload []byte, l lane, epoch uint64, handoff, block bool, notify *sync.WaitGroup) (ok bool, err error) {
	if ctx != nil && block {
		// Wake the wait loop below on cancellation. Broadcasting under the
		// shard lock pairs with the loop's ctx re-check: the waiter either
		// sees the error before parking or is woken after.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.notFull.Broadcast()
		})
		defer stop()
	}
	s.mu.Lock()
	for s.laneLen(l) >= s.capacity && !s.stopped {
		if !block {
			s.mu.Unlock()
			s.shed[l].Add(1)
			s.obsShed[l].Inc()
			p.shed.Add(1)
			return false, ErrFull
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				s.mu.Unlock()
				return false, cerr
			}
		}
		s.notFull.Wait()
	}
	if s.stopped {
		s.mu.Unlock()
		if p.closed.Load() {
			return false, ErrClosed
		}
		return false, nil
	}
	// Count the envelope in-flight before it becomes visible to a worker,
	// or a fast worker could retire it first and Flush would see a
	// transient zero with work still outstanding.
	p.inflight.Add(1)
	p.enqueued.Add(1)
	if notify != nil {
		notify.Add(1)
	}
	env := Envelope{Key: key, Payload: payload, lane: l, epoch: epoch,
		notify: notify, enqueuedNs: p.now().UnixNano()}
	if handoff && s.handoffOpen && epoch == s.handoffEpoch {
		s.handoff = append(s.handoff, env)
		s.handoffLen[l]++
	} else {
		// Either no transition is pending for this shard, or the fence
		// already lifted (the buffer was spliced before the table flip, so
		// appending here lands behind any moved predecessors).
		s.lanes[l].queue = append(s.lanes[l].queue, env)
	}
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	return true, nil
}

// laneLen is the lane's occupancy including its share of the handoff
// buffer (whose envelopes hold real queue slots). Callers hold s.mu.
func (s *pshard) laneLen(l lane) int {
	return len(s.lanes[l].queue) + s.handoffLen[l]
}

// queuedLocked is the total lane occupancy. Callers hold s.mu.
func (s *pshard) queuedLocked() int {
	total := 0
	for l := range s.lanes {
		total += len(s.lanes[l].queue)
	}
	return total
}

// requeueReady re-injects an envelope whose retry backoff elapsed; it is
// drained ahead of the lanes so a retried event does not fall behind its
// shard's backlog forever.
func (s *pshard) requeueReady(env Envelope) {
	s.mu.Lock()
	s.ready = append(s.ready, env)
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

// next blocks until the shard has dispatchable work (or is stopped and
// empty) and returns up to max envelopes: due retries first, then the
// lanes under deficit-weighted round-robin. Each pass grants every
// backlogged lane its quantum, so a saturated burst lane cannot starve
// the steady feed — and an empty lane's deficit resets rather than
// banking credit it would later dump as a latency spike.
func (s *pshard) next(max int, quantum [numLanes]int) []Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped && s.queuedLocked() == 0 && len(s.ready) == 0 {
			return nil
		}
		if !s.paused && (s.queuedLocked() > 0 || len(s.ready) > 0) {
			break
		}
		s.notEmpty.Wait()
	}
	if max < 1 {
		max = 1
	}
	batch := make([]Envelope, 0, min(max, s.queuedLocked()+len(s.ready)))
	n := min(max, len(s.ready))
	batch = append(batch, s.ready[:n]...)
	s.ready = append(s.ready[:0], s.ready[n:]...)
	fromLanes := false
	for len(batch) < max && s.queuedLocked() > 0 {
		for l := range s.lanes {
			q := &s.lanes[l]
			if len(q.queue) == 0 {
				q.deficit = 0
				continue
			}
			q.deficit += quantum[l]
			take := min(q.deficit, len(q.queue), max-len(batch))
			if take > 0 {
				batch = append(batch, q.queue[:take]...)
				q.queue = append(q.queue[:0], q.queue[take:]...)
				q.deficit -= take
				fromLanes = true
			}
			if len(batch) >= max {
				break
			}
		}
	}
	if fromLanes {
		s.notFull.Broadcast()
	}
	return batch
}

func (s *pshard) setPaused(v bool) {
	s.mu.Lock()
	s.paused = v
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

func (s *pshard) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

func (s *pshard) setDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// openHandoff arms the handoff buffer for one transition, identified by
// the epoch envelopes will carry after the routing-table version bump.
func (s *pshard) openHandoff(epoch uint64) {
	s.mu.Lock()
	s.handoffOpen = true
	s.handoffEpoch = epoch
	s.mu.Unlock()
}

// splice closes the handoff buffer and moves its envelopes into the live
// lanes in arrival order. Runs at fence-lift, before the table flip.
func (s *pshard) splice() {
	s.mu.Lock()
	for _, env := range s.handoff {
		s.lanes[env.lane].queue = append(s.lanes[env.lane].queue, env)
	}
	s.handoff = nil
	s.handoffLen = [numLanes]int{}
	s.handoffOpen = false
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

func (s *pshard) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queuedLocked() + len(s.handoff) + len(s.ready)
}

func (p *Pipeline) worker(s *pshard) {
	defer p.wg.Done()
	quantum := [numLanes]int{LaneSteady: p.cfg.SteadyWeight, LaneBurst: p.cfg.BurstWeight}
	for {
		batch := s.next(int(p.maxBatch.Load()), quantum)
		if batch == nil {
			return
		}
		p.batches.Add(1)
		mBatchSize.Observe(int64(len(batch)))
		drained := p.now().UnixNano()
		for i := range batch {
			env := &batch[i]
			if env.Attempt == 0 {
				// First dispatch: the envelope leaves its lane, so the key's
				// sticky lane pin drops with it. Retried envelopes (Attempt >
				// 0) arrive via the ready buffer; their wait is the scheduled
				// backoff, recorded separately.
				p.sticky.release(env.Key)
				if env.enqueuedNs > 0 {
					s.obsQueueWait.Observe(drained - env.enqueuedNs)
				}
			}
		}
		results := p.cfg.Process(s.id, batch)
		for j, env := range batch {
			var res Result
			if j < len(results) {
				res = results[j]
			}
			switch res.Outcome {
			case OutcomeCommitted:
				p.commits.Add(1)
				p.retire(env)
			case OutcomeRetry:
				env.Attempt++
				if env.Attempt >= p.cfg.MaxAttempts {
					p.deadLetter(s, env, res.Err)
					break
				}
				p.retries.Add(1)
				env := env
				backoff := p.backoffFor(env.Attempt)
				s.obsRetry.ObserveDuration(backoff)
				time.AfterFunc(backoff, func() { s.requeueReady(env) })
			case OutcomeDead:
				p.deadLetter(s, env, res.Err)
			}
		}
		p.noteDrain()
	}
}

// backoffFor doubles the base delay per completed attempt, capped at
// MaxBackoff, then jitters over the upper half of the result: a batch of
// envelopes failing together (one stalled dependency fails a whole
// micro-batch at once) spreads its retries out instead of re-arriving as
// the same synchronized herd every round.
func (p *Pipeline) backoffFor(attempt int) time.Duration {
	d := p.cfg.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			d = p.cfg.MaxBackoff
			break
		}
	}
	d = min(d, p.cfg.MaxBackoff)
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) //scilint:ignore determinism retry jitter is cadence, not data: no stored row depends on it
}

func (p *Pipeline) deadLetter(s *pshard, env Envelope, err error) {
	p.dead.Add(1)
	if env.enqueuedNs > 0 {
		s.obsDead.Observe(p.now().UnixNano() - env.enqueuedNs)
	}
	if p.cfg.OnDead != nil {
		p.cfg.OnDead(env, err)
	}
	p.retire(env)
}

// retire marks one envelope's final outcome: it releases any
// EnqueueNotify waiter, settles the envelope's epoch claim (possibly
// lifting a resharding fence), and wakes Flush when the pipeline idles.
// Epoch accounting runs before the inflight decrement so a Flush that
// returns implies every fence has lifted.
func (p *Pipeline) retire(env Envelope) {
	if env.notify != nil {
		env.notify.Done()
	}
	p.retireEpoch(env.epoch)
	if p.inflight.Add(-1) == 0 {
		p.idleMu.Lock()
		p.idleCond.Broadcast()
		p.idleMu.Unlock()
	}
}

// Reshard transitions the pipeline to target worker shards and returns
// without waiting for the transition to drain. The ordering contract:
// envelopes admitted under the old routing table keep draining in place
// (a leaving shard stops winning new keys, finishes its queues, and only
// then stops); keys whose winner moves buffer on the new winner's handoff
// queue; and once every old-table envelope reaches a final outcome the
// fence lifts — the buffers splice into the live lanes and the new table
// becomes authoritative. Per-key order is therefore preserved across the
// move. A second Reshard first waits for the pending transition.
func (p *Pipeline) Reshard(target int) error {
	if target < 1 {
		return fmt.Errorf("stream: reshard target %d: %w", target, ErrConfig)
	}
	p.reshardMu.Lock()
	defer p.reshardMu.Unlock()
	for {
		if p.closed.Load() {
			return ErrClosed
		}
		p.transMu.Lock()
		if !p.transPending {
			break
		}
		done := p.transDone
		p.transMu.Unlock()
		<-done
	}
	// transMu held, no transition pending.
	p.routerMu.Lock()
	if len(p.active) == target {
		p.routerMu.Unlock()
		p.transMu.Unlock()
		return nil
	}
	next := make([]*pshard, 0, target)
	var leaving []*pshard
	if target > len(p.active) {
		next = append(next, p.active...)
		for len(next) < target {
			s := newPshard(p.cfg.QueueCapacity, p.allocShardID(), p.paused.Load())
			next = append(next, s)
			p.wg.Add(1)
			go p.worker(s)
		}
	} else {
		// Shrink retires the highest-id shards: deterministic, and the
		// freed ids are exactly the ones reused by the next grow.
		byID := append([]*pshard(nil), p.active...)
		sort.Slice(byID, func(i, j int) bool { return byID[i].id < byID[j].id })
		next = append(next, byID[:target]...)
		leaving = append(leaving, byID[target:]...)
	}
	oldEpoch := p.epoch
	p.transActive.Store(true)
	p.epoch++
	newEpoch := p.epoch
	p.next = next
	p.leaving = leaving
	for _, s := range next {
		s.openHandoff(newEpoch)
	}
	for _, s := range leaving {
		s.setDraining()
	}
	p.routerMu.Unlock()
	p.transPending = true
	p.transOldEpoch = oldEpoch
	p.transDone = make(chan struct{})
	p.transMu.Unlock()
	// An idle pipeline has nothing to fence on: complete immediately.
	p.maybeCompleteTransition(oldEpoch)
	return nil
}

// allocShardID hands out the smallest free shard id. Callers hold transMu.
func (p *Pipeline) allocShardID() int {
	if len(p.freeShardIDs) > 0 {
		sort.Ints(p.freeShardIDs)
		id := p.freeShardIDs[0]
		p.freeShardIDs = p.freeShardIDs[1:]
		return id
	}
	id := p.nextShardID
	p.nextShardID++
	return id
}

// maybeCompleteTransition lifts the resharding fence once nothing
// admitted under the old routing table is still in flight. The handoff
// buffers splice BEFORE the table flip: a same-key envelope routed right
// after the flip must land behind its moved predecessors, never ahead.
func (p *Pipeline) maybeCompleteTransition(oldEpoch uint64) {
	p.transMu.Lock()
	defer p.transMu.Unlock()
	if !p.transPending || p.transOldEpoch != oldEpoch || p.epochInflight[oldEpoch&1].Load() != 0 {
		return
	}
	p.routerMu.RLock()
	next, leaving := p.next, p.leaving
	p.routerMu.RUnlock()
	for _, s := range next {
		s.splice()
	}
	p.routerMu.Lock()
	p.active = next
	p.next = nil
	p.leaving = nil
	shardCount := len(p.active)
	p.routerMu.Unlock()
	for _, s := range leaving {
		s.stop()
		p.freeShardIDs = append(p.freeShardIDs, s.id)
	}
	p.reshards.Add(1)
	mReshards.Inc()
	mShardCount.Set(int64(shardCount))
	p.transActive.Store(false)
	p.transPending = false
	close(p.transDone)
}

// Resharding reports whether a shard-set transition is pending.
func (p *Pipeline) Resharding() bool { return p.transActive.Load() }

// allShards snapshots every live shard: the active set plus, during a
// transition, the incoming shards not yet in it.
func (p *Pipeline) allShards() []*pshard {
	p.routerMu.RLock()
	defer p.routerMu.RUnlock()
	out := append([]*pshard(nil), p.active...)
	seen := make(map[int]bool, len(out))
	for _, s := range out {
		seen[s.id] = true
	}
	for _, s := range p.next {
		if !seen[s.id] {
			out = append(out, s)
		}
	}
	return out
}

// Flush blocks until every accepted envelope has reached a final outcome
// (committed or dead-lettered), including envelopes waiting out a retry
// backoff; any pending reshard transition has completed by then too. It
// does not stop the workers and must not be called while the pipeline is
// paused with work pending.
func (p *Pipeline) Flush() {
	p.idleMu.Lock()
	defer p.idleMu.Unlock()
	for p.inflight.Load() != 0 {
		p.idleCond.Wait()
	}
}

// Pause stops the workers from starting new batches (in-flight batches
// complete). Producers keep enqueueing until the queues fill.
func (p *Pipeline) Pause() {
	p.paused.Store(true)
	for _, s := range p.allShards() {
		s.setPaused(true)
	}
}

// Resume undoes Pause.
func (p *Pipeline) Resume() {
	p.paused.Store(false)
	for _, s := range p.allShards() {
		s.setPaused(false)
	}
}

// Close drains the pipeline gracefully: new enqueues fail with ErrClosed,
// the adaptive controller stops, every accepted envelope is processed to
// a final outcome (completing any reshard transition), then the workers
// exit. Safe to call more than once.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		p.wg.Wait()
		return
	}
	// Resume before joining the controller: a controller tick blocked in
	// Reshard needs the workers draining to see its transition complete.
	p.Resume()
	if p.adaptStop != nil {
		close(p.adaptStop)
		p.adaptWG.Wait()
	}
	p.Flush()
	for _, s := range p.allShards() {
		s.stop()
	}
	p.wg.Wait()
}

// Depth returns the total queued-envelope count across shards, including
// handoff-buffered envelopes (excluding envelopes waiting out a retry
// backoff).
func (p *Pipeline) Depth() int {
	total := 0
	for _, s := range p.allShards() {
		total += s.depth()
	}
	return total
}

// Shards returns the current routing shard count (the outgoing set's
// while a transition is draining).
func (p *Pipeline) Shards() int {
	p.routerMu.RLock()
	defer p.routerMu.RUnlock()
	return len(p.active)
}

// MaxShards returns the ceiling on live shard ids: the adaptive
// controller's growth bound, or the fixed shard count when the controller
// is off. Per-shard telemetry sized to this bound covers every id the
// pipeline will ever label — ids of removed shards are reused, never
// retired upward.
func (p *Pipeline) MaxShards() int {
	if p.cfg.Adaptive.Enabled {
		return max(p.cfg.Shards, p.cfg.Adaptive.MaxShards)
	}
	return p.cfg.Shards
}

// RetryAfter estimates how long a shed producer should wait before
// retrying: the queued backlog over the recent drain rate, clamped to
// [1s, 60s]. Before any drain history exists it answers the floor —
// "try again in a second" is the honest default for an empty estimator.
func (p *Pipeline) RetryAfter() time.Duration {
	const floor, ceil = time.Second, 60 * time.Second
	rate := p.rate.estimate()
	if rate <= 0 {
		return floor
	}
	d := time.Duration(float64(p.Depth()) / rate * float64(time.Second))
	if d < floor {
		return floor
	}
	if d > ceil {
		return ceil
	}
	return d
}

// drainRate is an EWMA of the pipeline's final-outcome throughput,
// updated by the workers after each batch and read by RetryAfter.
type drainRate struct {
	mu       sync.Mutex
	lastNs   int64
	lastDone uint64
	perSec   float64
}

func (p *Pipeline) noteDrain() {
	nowNs := p.now().UnixNano()
	done := p.commits.Load() + p.dead.Load()
	r := &p.rate
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastNs == 0 {
		r.lastNs, r.lastDone = nowNs, done
		return
	}
	dt := nowNs - r.lastNs
	// Batches can complete microseconds apart; sampling that often would
	// make the estimate all noise. Fold in at most ~10 windows a second.
	if dt < int64(100*time.Millisecond) {
		return
	}
	inst := float64(done-r.lastDone) / (float64(dt) / float64(time.Second))
	if r.perSec == 0 {
		r.perSec = inst
	} else {
		r.perSec = 0.7*r.perSec + 0.3*inst
	}
	r.lastNs, r.lastDone = nowNs, done
}

func (r *drainRate) estimate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.perSec
}

// stickyLanes pins a key to one lane while any of its envelopes are
// queued: admission may classify a cascade's later events differently
// (the source's steady bucket refilled, say), but letting one key span
// both lanes would let the weighted scheduler reorder it. Pins are
// striped 16 ways to keep the enqueue path from serialising on one lock.
type stickyLanes struct {
	stripes [16]stickyStripe
}

type stickyStripe struct {
	mu sync.Mutex
	m  map[string]*stickyPin
}

type stickyPin struct {
	l lane
	n int
}

func (t *stickyLanes) init() {
	for i := range t.stripes {
		t.stripes[i].m = make(map[string]*stickyPin)
	}
}

func (t *stickyLanes) stripe(key string) *stickyStripe {
	return &t.stripes[keyHash(key)&uint32(len(t.stripes)-1)]
}

// acquire pins key to want — or to its existing lane if already pinned —
// and bumps the pin count.
func (t *stickyLanes) acquire(key string, want lane) lane {
	st := t.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if pin := st.m[key]; pin != nil {
		pin.n++
		return pin.l
	}
	st.m[key] = &stickyPin{l: want, n: 1}
	return want
}

// release drops one pin; the last release unpins the key.
func (t *stickyLanes) release(key string) {
	st := t.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if pin := st.m[key]; pin != nil {
		if pin.n--; pin.n <= 0 {
			delete(st.m, key)
		}
	}
}

// ShardStats is one shard's queue and shed breakdown.
type ShardStats struct {
	// ID is the shard's stable id (the telemetry label).
	ID int `json:"id"`
	// Steady and Burst are the lanes' queued-envelope counts (including
	// handoff-buffered envelopes); Ready counts retries due again.
	Steady int `json:"steady"`
	Burst  int `json:"burst"`
	Ready  int `json:"ready"`
	// ShedSteady and ShedBurst count enqueue rejections per lane since
	// the shard started.
	ShedSteady uint64 `json:"shed_steady"`
	ShedBurst  uint64 `json:"shed_burst"`
	// Draining marks a shard leaving the set under a pending transition.
	Draining bool `json:"draining,omitempty"`
}

func (s *pshard) stats() ShardStats {
	s.mu.Lock()
	st := ShardStats{
		ID:       s.id,
		Steady:   s.laneLen(LaneSteady),
		Burst:    s.laneLen(LaneBurst),
		Ready:    len(s.ready),
		Draining: s.draining && !s.stopped,
	}
	s.mu.Unlock()
	st.ShedSteady = s.shed[LaneSteady].Load()
	st.ShedBurst = s.shed[LaneBurst].Load()
	return st
}

// PipelineStats is a snapshot of the pipeline counters.
type PipelineStats struct {
	// Enqueued counts accepted envelopes; Shed counts enqueue rejections
	// on full lanes; Throttled counts per-source admission rejections.
	Enqueued, Shed, Throttled uint64
	// Committed, Retried and DeadLettered count per-envelope outcomes
	// (Retried counts re-processing attempts, not envelopes).
	Committed, Retried, DeadLettered uint64
	// Batches counts processed micro-batches.
	Batches uint64
	// Inflight is the number of envelopes not yet at a final outcome.
	Inflight int64
	// Shards is the current routing shard count; Reshards counts completed
	// transitions; Resharding marks one pending.
	Shards     int
	Reshards   uint64
	Resharding bool
	// MaxBatch is the live micro-batch ceiling (the adaptive controller
	// moves it; static pipelines report their configured value).
	MaxBatch int
	// QueueDepths is the per-shard queued-envelope count in shard-id
	// order, including shards draining out of the set.
	QueueDepths []int
	// PerShard breaks queue depth and shed counts down by shard and lane,
	// in shard-id order.
	PerShard []ShardStats
	// Admission is the per-source admitted/throttled breakdown, sorted by
	// source; nil when admission is off.
	Admission []SourceAdmission
}

// Stats returns a snapshot of the pipeline counters.
func (p *Pipeline) Stats() PipelineStats {
	shards := p.allShards()
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
	depths := make([]int, len(shards))
	per := make([]ShardStats, len(shards))
	for i, s := range shards {
		st := s.stats()
		per[i] = st
		depths[i] = st.Steady + st.Burst + st.Ready
	}
	ps := PipelineStats{
		Enqueued:     p.enqueued.Load(),
		Shed:         p.shed.Load(),
		Throttled:    p.throttled.Load(),
		Committed:    p.commits.Load(),
		Retried:      p.retries.Load(),
		DeadLettered: p.dead.Load(),
		Batches:      p.batches.Load(),
		Inflight:     p.inflight.Load(),
		Shards:       p.Shards(),
		Reshards:     p.reshards.Load(),
		Resharding:   p.Resharding(),
		MaxBatch:     int(p.maxBatch.Load()),
		QueueDepths:  depths,
		PerShard:     per,
	}
	if p.admission != nil {
		ps.Admission = p.admission.stats()
	}
	return ps
}
