package stream

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pipeline stage telemetry, labeled per shard. Handles are pre-registered
// at NewPipeline so the per-envelope record calls are allocation-free.
var (
	mQueueWait = obs.NewDurationHistogramVec("scilens_pipeline_queue_wait_seconds",
		"Time a first-delivery envelope spent queued on its shard before a worker drained it.", "shard")
	mRetryBackoff = obs.NewDurationHistogramVec("scilens_pipeline_retry_backoff_seconds",
		"Backoff delays scheduled for retried envelopes.", "shard")
	mDeadAge = obs.NewDurationHistogramVec("scilens_pipeline_dead_letter_age_seconds",
		"Envelope age (since first enqueue) at the moment of dead-lettering.", "shard")
	mBatchSize = obs.NewSizeHistogram("scilens_pipeline_batch_records",
		"Micro-batch sizes drained per processing round.")
)

// Pipeline is the asynchronous staged-ingestion engine layered over the
// broker abstractions of this package: producers enqueue raw keyed
// envelopes onto sharded bounded queues (key-hash routing preserves
// per-key ordering, e.g. an article's posting always precedes its
// reactions), and one worker per shard drains micro-batches through a
// caller-supplied batch processor. Per-envelope outcomes drive the rest of
// the machinery: failures retry on the same shard with capped exponential
// backoff and are handed to the dead-letter callback once the attempt
// budget is exhausted.
//
// Backpressure is explicit and caller-selectable: Enqueue blocks while the
// target shard is at capacity, TryEnqueue sheds with ErrFull (the API
// layer's 429 path). Flush waits for every accepted envelope to reach a
// final outcome (committed or dead-lettered), which is what makes a
// graceful drain possible; Close drains and stops the workers.
type Pipeline struct {
	cfg    PipelineConfig
	shards []*pshard
	wg     sync.WaitGroup

	enqueued atomic.Uint64
	shed     atomic.Uint64
	commits  atomic.Uint64
	retries  atomic.Uint64
	dead     atomic.Uint64
	batches  atomic.Uint64

	// inflight counts envelopes accepted but not yet at a final outcome
	// (queued, in a batch, or waiting out a retry backoff). Flush waits for
	// it to reach zero.
	inflight atomic.Int64
	idleMu   sync.Mutex
	idleCond *sync.Cond

	closed atomic.Bool
}

// Envelope is one raw event moving through the pipeline. Attempt counts
// completed processing attempts (0 on first delivery).
type Envelope struct {
	// Key is the routing key; envelopes sharing a key are processed in
	// enqueue order on one shard.
	Key string
	// Payload is the opaque event body.
	Payload []byte
	// Attempt is the number of failed processing attempts so far.
	Attempt int

	// notify, when set (EnqueueNotify), is marked done once the envelope
	// reaches its final outcome. It rides along through retries.
	notify *sync.WaitGroup
	// enqueuedNs is the wall-clock nanosecond stamp of the first enqueue;
	// it rides along through retries and feeds the queue-wait and
	// dead-letter-age telemetry.
	enqueuedNs int64
}

// Outcome classifies one envelope's processing result.
type Outcome int

const (
	// OutcomeCommitted marks the envelope fully processed.
	OutcomeCommitted Outcome = iota
	// OutcomeRetry schedules the envelope for re-processing after a capped
	// exponential backoff; once MaxAttempts is exhausted it dead-letters.
	OutcomeRetry
	// OutcomeDead dead-letters the envelope immediately (permanent
	// failures: malformed payloads, unparseable documents).
	OutcomeDead
)

// Result is one envelope's outcome from the batch processor. Err carries
// the failure reason for retries and dead letters.
type Result struct {
	Outcome Outcome
	Err     error
}

// PipelineConfig configures NewPipeline. Process is required; everything
// else has working defaults.
type PipelineConfig struct {
	// Shards is the queue/worker count (default 4). Per-key ordering holds
	// within a shard, so more shards buy parallelism across keys.
	Shards int
	// QueueCapacity bounds each shard's queue (default 1024). A full shard
	// blocks Enqueue and sheds TryEnqueue.
	QueueCapacity int
	// MaxBatch is the micro-batch size a worker drains per processing round
	// (default 64) — the amortisation unit for batched evaluation and
	// batched store commits.
	MaxBatch int
	// MaxAttempts is the per-envelope attempt budget before dead-lettering
	// (default 3).
	MaxAttempts int
	// Backoff is the first retry delay (default 5ms); each further attempt
	// doubles it up to MaxBackoff (default 250ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Process handles one micro-batch for one shard and returns one Result
	// per envelope, index-aligned (a short result slice treats the missing
	// tail as committed). It runs concurrently across shards and must be
	// safe for that.
	Process func(shard int, batch []Envelope) []Result
	// OnDead, when set, receives every dead-lettered envelope with its
	// final failure reason (the platform writes it to the dead_letters
	// table).
	OnDead func(env Envelope, err error)
}

// pshard is one bounded FIFO plus its retry re-injection buffer. ready
// holds envelopes whose backoff elapsed; they bypass the capacity bound
// (their slot was accounted for when first enqueued) and are drained ahead
// of the main queue.
type pshard struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	notFull  *sync.Cond
	queue    []Envelope
	ready    []Envelope
	capacity int
	paused   bool
	stopped  bool

	// Pre-registered telemetry handles for this shard's label set.
	obsQueueWait *obs.Histogram
	obsRetry     *obs.Histogram
	obsDead      *obs.Histogram
}

func newPshard(capacity, index int) *pshard {
	label := strconv.Itoa(index)
	s := &pshard{
		capacity:     capacity,
		obsQueueWait: mQueueWait.With(label),
		obsRetry:     mRetryBackoff.With(label),
		obsDead:      mDeadAge.With(label),
	}
	s.notEmpty = sync.NewCond(&s.mu)
	s.notFull = sync.NewCond(&s.mu)
	return s
}

// NewPipeline builds and starts the pipeline workers.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 1024
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 250 * time.Millisecond
	}
	p := &Pipeline{cfg: cfg}
	p.idleCond = sync.NewCond(&p.idleMu)
	for i := 0; i < cfg.Shards; i++ {
		p.shards = append(p.shards, newPshard(cfg.QueueCapacity, i))
	}
	for i := range p.shards {
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

func (p *Pipeline) shardFor(key string) *pshard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	return p.shards[int(keyHash(key)%uint32(len(p.shards)))]
}

// Enqueue routes the envelope to its key's shard, blocking while the shard
// is at capacity (the backpressure-by-blocking mode).
func (p *Pipeline) Enqueue(key string, payload []byte) error {
	return p.enqueue(nil, key, payload, true, nil)
}

// EnqueueCtx behaves like Enqueue but stops waiting when ctx is cancelled,
// returning the context error — the shape request handlers need so an
// abandoned client cannot park a goroutine on a full shard forever.
func (p *Pipeline) EnqueueCtx(ctx context.Context, key string, payload []byte) error {
	return p.enqueue(ctx, key, payload, true, nil)
}

// EnqueueNotify behaves like Enqueue and additionally marks wg done when
// the envelope reaches its final outcome (committed or dead-lettered,
// after any retries) — the hook dead-letter replay uses to wait for its
// own envelopes without flushing the whole pipeline.
func (p *Pipeline) EnqueueNotify(key string, payload []byte, wg *sync.WaitGroup) error {
	return p.enqueue(nil, key, payload, true, wg)
}

// TryEnqueue routes the envelope to its key's shard, shedding with ErrFull
// when the shard is at capacity (the backpressure-by-load-shedding mode).
func (p *Pipeline) TryEnqueue(key string, payload []byte) error {
	return p.enqueue(nil, key, payload, false, nil)
}

func (p *Pipeline) enqueue(ctx context.Context, key string, payload []byte, block bool, notify *sync.WaitGroup) error {
	if p.closed.Load() {
		return ErrClosed
	}
	s := p.shardFor(key)
	if ctx != nil && block {
		// Wake the wait loop below on cancellation. Broadcasting under the
		// shard lock pairs with the loop's ctx re-check: the waiter either
		// sees the error before parking or is woken after.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.notFull.Broadcast()
		})
		defer stop()
	}
	s.mu.Lock()
	for len(s.queue) >= s.capacity && !s.stopped {
		if !block {
			s.mu.Unlock()
			p.shed.Add(1)
			return ErrFull
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				s.mu.Unlock()
				return err
			}
		}
		s.notFull.Wait()
	}
	if s.stopped {
		s.mu.Unlock()
		return ErrClosed
	}
	// Count the envelope in-flight before it becomes visible to a worker,
	// or a fast worker could retire it first and Flush would see a
	// transient zero with work still outstanding.
	p.inflight.Add(1)
	p.enqueued.Add(1)
	if notify != nil {
		notify.Add(1)
	}
	s.queue = append(s.queue, Envelope{Key: key, Payload: payload, notify: notify, enqueuedNs: time.Now().UnixNano()})
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	return nil
}

// requeueReady re-injects an envelope whose retry backoff elapsed; it is
// drained ahead of the main queue so a retried event does not fall behind
// its shard's backlog forever.
func (s *pshard) requeueReady(env Envelope) {
	s.mu.Lock()
	s.ready = append(s.ready, env)
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

// next blocks until the shard has work (or is stopped and empty) and
// returns up to max envelopes, due retries first.
func (s *pshard) next(max int) []Envelope {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped && len(s.queue) == 0 && len(s.ready) == 0 {
			return nil
		}
		if !s.paused && (len(s.queue) > 0 || len(s.ready) > 0) {
			break
		}
		s.notEmpty.Wait()
	}
	batch := make([]Envelope, 0, max)
	n := min(max, len(s.ready))
	batch = append(batch, s.ready[:n]...)
	s.ready = append(s.ready[:0], s.ready[n:]...)
	if rest := max - len(batch); rest > 0 {
		n = min(rest, len(s.queue))
		batch = append(batch, s.queue[:n]...)
		s.queue = append(s.queue[:0], s.queue[n:]...)
		s.notFull.Broadcast()
	}
	return batch
}

func (s *pshard) setPaused(v bool) {
	s.mu.Lock()
	s.paused = v
	s.mu.Unlock()
	s.notEmpty.Broadcast()
}

func (s *pshard) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
	s.notEmpty.Broadcast()
	s.notFull.Broadcast()
}

func (s *pshard) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) + len(s.ready)
}

func (p *Pipeline) worker(i int) {
	defer p.wg.Done()
	s := p.shards[i]
	for {
		batch := s.next(p.cfg.MaxBatch)
		if batch == nil {
			return
		}
		p.batches.Add(1)
		mBatchSize.Observe(int64(len(batch)))
		drained := time.Now().UnixNano()
		for _, env := range batch {
			// Retried envelopes (Attempt > 0) arrive via the ready buffer;
			// their wait is the scheduled backoff, recorded separately.
			if env.Attempt == 0 && env.enqueuedNs > 0 {
				s.obsQueueWait.Observe(drained - env.enqueuedNs)
			}
		}
		results := p.cfg.Process(i, batch)
		for j, env := range batch {
			var res Result
			if j < len(results) {
				res = results[j]
			}
			switch res.Outcome {
			case OutcomeCommitted:
				p.commits.Add(1)
				p.retire(env)
			case OutcomeRetry:
				env.Attempt++
				if env.Attempt >= p.cfg.MaxAttempts {
					p.deadLetter(s, env, res.Err)
					break
				}
				p.retries.Add(1)
				env := env
				backoff := p.backoffFor(env.Attempt)
				s.obsRetry.ObserveDuration(backoff)
				time.AfterFunc(backoff, func() { s.requeueReady(env) })
			case OutcomeDead:
				p.deadLetter(s, env, res.Err)
			}
		}
	}
}

// backoffFor doubles the base delay per completed attempt, capped at
// MaxBackoff, then jitters over the upper half of the result: a batch of
// envelopes failing together (one stalled dependency fails a whole
// micro-batch at once) spreads its retries out instead of re-arriving as
// the same synchronized herd every round.
func (p *Pipeline) backoffFor(attempt int) time.Duration {
	d := p.cfg.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.cfg.MaxBackoff {
			d = p.cfg.MaxBackoff
			break
		}
	}
	d = min(d, p.cfg.MaxBackoff)
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func (p *Pipeline) deadLetter(s *pshard, env Envelope, err error) {
	p.dead.Add(1)
	if env.enqueuedNs > 0 {
		s.obsDead.Observe(time.Now().UnixNano() - env.enqueuedNs)
	}
	if p.cfg.OnDead != nil {
		p.cfg.OnDead(env, err)
	}
	p.retire(env)
}

// retire marks one envelope's final outcome: it releases any
// EnqueueNotify waiter and wakes Flush when the pipeline idles.
func (p *Pipeline) retire(env Envelope) {
	if env.notify != nil {
		env.notify.Done()
	}
	if p.inflight.Add(-1) == 0 {
		p.idleMu.Lock()
		p.idleCond.Broadcast()
		p.idleMu.Unlock()
	}
}

// Flush blocks until every accepted envelope has reached a final outcome
// (committed or dead-lettered), including envelopes waiting out a retry
// backoff. It does not stop the workers and must not be called while the
// pipeline is paused with work pending.
func (p *Pipeline) Flush() {
	p.idleMu.Lock()
	defer p.idleMu.Unlock()
	for p.inflight.Load() != 0 {
		p.idleCond.Wait()
	}
}

// Pause stops the workers from starting new batches (in-flight batches
// complete). Producers keep enqueueing until the queues fill.
func (p *Pipeline) Pause() {
	for _, s := range p.shards {
		s.setPaused(true)
	}
}

// Resume undoes Pause.
func (p *Pipeline) Resume() {
	for _, s := range p.shards {
		s.setPaused(false)
	}
}

// Close drains the pipeline gracefully: new enqueues fail with ErrClosed,
// every accepted envelope is processed to a final outcome, then the
// workers exit. Safe to call more than once.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		p.wg.Wait()
		return
	}
	p.Resume()
	p.Flush()
	for _, s := range p.shards {
		s.stop()
	}
	p.wg.Wait()
}

// Depth returns the total queued-envelope count across shards (excluding
// envelopes waiting out a retry backoff).
func (p *Pipeline) Depth() int {
	total := 0
	for _, s := range p.shards {
		total += s.depth()
	}
	return total
}

// PipelineStats is a snapshot of the pipeline counters.
type PipelineStats struct {
	// Enqueued counts accepted envelopes; Shed counts TryEnqueue rejections.
	Enqueued, Shed uint64
	// Committed, Retried and DeadLettered count per-envelope outcomes
	// (Retried counts re-processing attempts, not envelopes).
	Committed, Retried, DeadLettered uint64
	// Batches counts processed micro-batches.
	Batches uint64
	// Inflight is the number of envelopes not yet at a final outcome.
	Inflight int64
	// QueueDepths is the per-shard queued-envelope count.
	QueueDepths []int
}

// Stats returns a snapshot of the pipeline counters.
// Shards returns the pipeline's shard/worker count (after defaulting).
func (p *Pipeline) Shards() int { return len(p.shards) }

func (p *Pipeline) Stats() PipelineStats {
	depths := make([]int, len(p.shards))
	for i, s := range p.shards {
		depths[i] = s.depth()
	}
	return PipelineStats{
		Enqueued:     p.enqueued.Load(),
		Shed:         p.shed.Load(),
		Committed:    p.commits.Load(),
		Retried:      p.retries.Load(),
		DeadLettered: p.dead.Load(),
		Batches:      p.batches.Load(),
		Inflight:     p.inflight.Load(),
		QueueDepths:  depths,
	}
}
