package stream

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

func fixedClock() func() time.Time {
	at := time.Unix(1_700_000_000, 0)
	return func() time.Time { return at }
}

func TestRendezvousMinimalMovement(t *testing.T) {
	mk := func(ids ...int) []*pshard {
		out := make([]*pshard, len(ids))
		for i, id := range ids {
			out[i] = &pshard{id: id}
		}
		return out
	}
	small := mk(0, 1, 2, 3)
	big := mk(0, 1, 2, 3, 4, 5, 6, 7)
	shuffled := mk(7, 3, 5, 1, 6, 0, 2, 4)

	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("article-%d", i)
		s := rendezvous(key, small)
		b := rendezvous(key, big)
		// Order independence: the winner is a function of the id set.
		if sh := rendezvous(key, shuffled); sh.id != b.id {
			t.Fatalf("key %q: winner depends on member order (%d vs %d)", key, b.id, sh.id)
		}
		// Minimal movement: a key only leaves its shard when a NEW shard
		// outranks it — keys whose winner in the big set is an old id must
		// keep their old winner exactly.
		if b.id < len(small) {
			if b.id != s.id {
				t.Fatalf("key %q: winner changed among surviving shards (%d -> %d)", key, s.id, b.id)
			}
		} else {
			moved++
		}
	}
	// Expected movement fraction is (8-4)/8 = 1/2; allow a generous band.
	if moved < 600 || moved > 1400 {
		t.Fatalf("moved %d/2000 keys on 4->8 growth, expected ~1000", moved)
	}
}

// TestPipelineReshardPreservesPerKeyOrder grows 2->5 and shrinks 5->3
// while concurrent producers stream ordered per-key sequences, and
// verifies every key's envelopes were processed in enqueue order.
func TestPipelineReshardPreservesPerKeyOrder(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{Shards: 2, MaxBatch: 8, QueueCapacity: 64, Process: proc.process})
	defer p.Close()

	const producers, keysPer, perKey = 4, 8, 60
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				for k := 0; k < keysPer; k++ {
					key := fmt.Sprintf("p%d-key%d", g, k)
					if err := p.Enqueue(key, []byte(strconv.Itoa(i))); err != nil {
						t.Error(err)
						return
					}
				}
				if g == 0 && i == perKey/3 {
					if err := p.Reshard(5); err != nil {
						t.Error(err)
					}
				}
				if g == 0 && i == 2*perKey/3 {
					if err := p.Reshard(3); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	p.Flush()

	proc.mu.Lock()
	defer proc.mu.Unlock()
	if got := len(proc.byKey); got != producers*keysPer {
		t.Fatalf("saw %d keys, want %d", got, producers*keysPer)
	}
	for key, payloads := range proc.byKey {
		if len(payloads) != perKey {
			t.Fatalf("key %s: %d envelopes, want %d", key, len(payloads), perKey)
		}
		for i, pay := range payloads {
			if pay != strconv.Itoa(i) {
				t.Fatalf("key %s: out of order at %d: got %s", key, i, pay)
			}
		}
	}

	st := p.Stats()
	if st.Reshards != 2 {
		t.Fatalf("Reshards = %d, want 2", st.Reshards)
	}
	if st.Shards != 3 {
		t.Fatalf("Shards = %d, want 3", st.Shards)
	}
	if st.DeadLettered != 0 {
		t.Fatalf("dead-lettered %d envelopes", st.DeadLettered)
	}
}

func TestPipelineReshardValidation(t *testing.T) {
	p := NewPipeline(PipelineConfig{Shards: 2, Process: func(int, []Envelope) []Result { return nil }})
	defer p.Close()
	if err := p.Reshard(0); !errors.Is(err, ErrConfig) {
		t.Fatalf("Reshard(0) = %v, want ErrConfig", err)
	}
	if err := p.Reshard(2); err != nil {
		t.Fatalf("no-op Reshard = %v", err)
	}
	if got := p.Stats().Reshards; got != 0 {
		t.Fatalf("no-op reshard counted: %d", got)
	}
}

// TestPipelineLaneStarvation saturates the burst lane and checks the
// steady lane still makes proportional progress under the 2:1
// deficit-weighted dequeue.
func TestPipelineLaneStarvation(t *testing.T) {
	proc := newCollectProcessor(nil)
	var order []string
	var orderMu sync.Mutex
	p := NewPipeline(PipelineConfig{
		Shards:        1,
		QueueCapacity: 2048,
		MaxBatch:      8,
		Now:           fixedClock(),
		// A near-zero steady budget pushes the hot source's whole feed
		// into the burst lane; the huge burst depth keeps it admitted.
		Admission: &AdmissionConfig{SteadyRate: 1e-9, SteadyDepth: 1e-9, BurstRate: 1e-9, BurstDepth: 5000},
		Process: func(shard int, batch []Envelope) []Result {
			orderMu.Lock()
			for _, env := range batch {
				order = append(order, env.Key)
			}
			orderMu.Unlock()
			return proc.process(shard, batch)
		},
	})
	defer p.Close()

	p.Pause()
	const burstN, steadyN = 900, 100
	for i := 0; i < burstN; i++ {
		if err := p.EnqueueSource("hot.example.com", fmt.Sprintf("burst-%d", i), []byte("b")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < steadyN; i++ {
		// Plain enqueues ride the steady lane unadmitted.
		if err := p.Enqueue(fmt.Sprintf("steady-%d", i), []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if len(st.PerShard) != 1 || st.PerShard[0].Burst != burstN || st.PerShard[0].Steady != steadyN {
		t.Fatalf("lane split wrong: %+v", st.PerShard)
	}
	p.Resume()
	p.Flush()

	orderMu.Lock()
	defer orderMu.Unlock()
	if len(order) != burstN+steadyN {
		t.Fatalf("processed %d envelopes, want %d", len(order), burstN+steadyN)
	}
	lastSteady := -1
	for i, key := range order {
		if key[0] == 's' {
			lastSteady = i
		}
	}
	// At 2:1 weights the steady lane's 100 envelopes interleave with
	// ~50 burst envelopes: the last one should land around position 150.
	// Anything past 400 means the burst lane starved it.
	if lastSteady < 0 || lastSteady > 400 {
		t.Fatalf("last steady envelope at position %d of %d; steady lane starved", lastSteady, len(order))
	}
}

func TestAdmissionBuckets(t *testing.T) {
	at := time.Unix(1_700_000_000, 0)
	now := func() time.Time { return at }
	a := newAdmission(AdmissionConfig{SteadyRate: 1, SteadyDepth: 2, BurstRate: 1, BurstDepth: 2}, now)

	for i := 0; i < 2; i++ {
		if d := a.admit("src"); d.throttled || d.lane != LaneSteady {
			t.Fatalf("admit %d: %+v, want steady", i, d)
		}
	}
	for i := 0; i < 2; i++ {
		if d := a.admit("src"); d.throttled || d.lane != LaneBurst {
			t.Fatalf("overflow admit %d: %+v, want burst", i, d)
		}
	}
	d := a.admit("src")
	if !d.throttled {
		t.Fatalf("expected throttle, got %+v", d)
	}
	if d.retryAfter <= 0 || d.retryAfter > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", d.retryAfter)
	}
	// Another source is untouched by the hot one's exhaustion.
	if d := a.admit("other"); d.throttled || d.lane != LaneSteady {
		t.Fatalf("independent source: %+v, want steady", d)
	}
	// A second's refill re-admits one steady token.
	at = at.Add(time.Second)
	if d := a.admit("src"); d.throttled || d.lane != LaneSteady {
		t.Fatalf("after refill: %+v, want steady", d)
	}

	stats := a.stats()
	if len(stats) != 2 || stats[0].Source != "other" || stats[1].Source != "src" {
		t.Fatalf("stats = %+v", stats)
	}
	if s := stats[1]; s.Steady != 3 || s.Burst != 2 || s.Throttled != 1 {
		t.Fatalf("src counters = %+v", s)
	}
}

func TestPipelineThrottledEnqueue(t *testing.T) {
	p := NewPipeline(PipelineConfig{
		Shards:    1,
		Now:       fixedClock(),
		Admission: &AdmissionConfig{SteadyRate: 1, SteadyDepth: 1, BurstRate: 1, BurstDepth: 1},
		Process:   func(int, []Envelope) []Result { return nil },
	})
	defer p.Close()

	if err := p.EnqueueSource("src", "k1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.EnqueueSource("src", "k2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	err := p.EnqueueSource("src", "k3", []byte("x"))
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("third enqueue = %v, want ErrThrottled", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) || te.RetryAfter <= 0 {
		t.Fatalf("throttle error carries no retry hint: %v", err)
	}
	p.Flush()
	st := p.Stats()
	if st.Throttled != 1 || st.Enqueued != 2 {
		t.Fatalf("throttled=%d enqueued=%d, want 1/2", st.Throttled, st.Enqueued)
	}
}

// TestAdaptTickDeterministic drives the controller by hand: sustained
// pressure widens the batch ceiling and doubles the shard set; sustained
// slack shrinks both back.
func TestAdaptTickDeterministic(t *testing.T) {
	proc := newCollectProcessor(nil)
	p := NewPipeline(PipelineConfig{
		Shards:        2,
		QueueCapacity: 10,
		MaxBatch:      4,
		Now:           fixedClock(),
		Adaptive: AdaptiveConfig{
			Enabled:   true,
			MinShards: 2, MaxShards: 8,
			MinBatch: 4, MaxBatch: 32,
			Interval:  -1, // no ticker: the test is the clock
			HighWater: 0.5, LowWater: 0.05,
			GrowAfter: 2, ShrinkAfter: 3,
		},
		Process: proc.process,
	})
	defer p.Close()

	p.Pause()
	for i := 0; i < 16; i++ { // fill = 16/20 = 0.8 over the high water
		if err := p.Enqueue(fmt.Sprintf("k%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	p.AdaptTick()
	if got := p.Stats().MaxBatch; got != 8 {
		t.Fatalf("after 1 high tick MaxBatch = %d, want 8", got)
	}
	if p.Resharding() {
		t.Fatal("resharded after a single high tick")
	}
	p.AdaptTick()
	if !p.Resharding() {
		t.Fatal("no reshard after GrowAfter high ticks")
	}
	if got := p.Stats().MaxBatch; got != 16 {
		t.Fatalf("after 2 high ticks MaxBatch = %d, want 16", got)
	}
	// A tick during the pending transition must not stack another.
	p.AdaptTick()

	p.Resume()
	p.Flush()
	if got := p.Shards(); got != 4 {
		t.Fatalf("post-transition Shards = %d, want 4", got)
	}

	// Empty queues: batch halves per tick to the floor, shards halve
	// after ShrinkAfter consecutive low ticks.
	for i := 0; i < 3; i++ {
		p.AdaptTick()
	}
	p.Flush() // idle-pipeline shrink completes immediately
	if got := p.Shards(); got != 2 {
		t.Fatalf("post-shrink Shards = %d, want 2", got)
	}
	if got := p.Stats().MaxBatch; got != 4 {
		t.Fatalf("post-shrink MaxBatch = %d, want 4 (floor)", got)
	}
	st := p.Stats()
	if st.Reshards != 2 {
		t.Fatalf("Reshards = %d, want 2", st.Reshards)
	}
}

// TestPipelinePerShardShed pins the per-shard, per-lane shed accounting.
func TestPipelinePerShardShed(t *testing.T) {
	p := NewPipeline(PipelineConfig{
		Shards:        1,
		QueueCapacity: 2,
		Now:           fixedClock(),
		Process:       func(int, []Envelope) []Result { return nil },
	})
	defer p.Close()

	p.Pause()
	for i := 0; i < 2; i++ {
		if err := p.TryEnqueue(fmt.Sprintf("k%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.TryEnqueue("k2", []byte("x")); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow = %v, want ErrFull", err)
	}
	st := p.Stats()
	if st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
	if len(st.PerShard) != 1 || st.PerShard[0].ShedSteady != 1 || st.PerShard[0].ShedBurst != 0 {
		t.Fatalf("per-shard shed = %+v", st.PerShard)
	}
	p.Resume()
}
