package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTopicBroker(t *testing.T, parts, capacity int) *Broker {
	t.Helper()
	b := NewBroker()
	if err := b.CreateTopic("postings", TopicConfig{Partitions: parts, Capacity: capacity}); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("", TopicConfig{}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty name: %v", err)
	}
	if err := b.CreateTopic("t", TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", TopicConfig{}); !errors.Is(err, ErrExists) {
		t.Errorf("dup: %v", err)
	}
	if _, err := b.Publish("missing", "k", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing topic: %v", err)
	}
}

func TestPublishPollCommit(t *testing.T) {
	b := newTopicBroker(t, 2, 100)
	for i := 0; i < 10; i++ {
		if _, err := b.Publish("postings", fmt.Sprintf("outlet-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Subscribe("postings", "extractors")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := c.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 10 {
		t.Fatalf("polled: %d", len(msgs))
	}
	// Per-partition offsets are dense from 0.
	seen := map[int][]int64{}
	for _, m := range msgs {
		seen[m.Partition] = append(seen[m.Partition], m.Offset)
	}
	for pi, offs := range seen {
		for i, off := range offs {
			if off != int64(i) {
				t.Errorf("partition %d offsets: %v", pi, offs)
			}
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// Nothing left.
	msgs, _ = c.Poll(100)
	if len(msgs) != 0 {
		t.Errorf("after commit: %d", len(msgs))
	}
}

func TestKeyRoutingIsSticky(t *testing.T) {
	b := newTopicBroker(t, 4, 100)
	for i := 0; i < 20; i++ {
		b.Publish("postings", "same-outlet", nil)
	}
	c, _ := b.Subscribe("postings", "g")
	msgs, _ := c.Poll(100)
	if len(msgs) != 20 {
		t.Fatalf("polled: %d", len(msgs))
	}
	part := msgs[0].Partition
	for _, m := range msgs {
		if m.Partition != part {
			t.Fatal("same key should route to one partition")
		}
	}
	// Messages for one key arrive in publish order.
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Offset != msgs[i-1].Offset+1 {
			t.Fatal("per-partition order broken")
		}
	}
}

func TestAtLeastOnceRedelivery(t *testing.T) {
	b := newTopicBroker(t, 1, 100)
	for i := 0; i < 5; i++ {
		b.Publish("postings", "k", []byte{byte(i)})
	}
	c, _ := b.Subscribe("postings", "g")
	first, _ := c.Poll(3)
	if len(first) != 3 {
		t.Fatalf("first poll: %d", len(first))
	}
	// Crash before commit: redelivery from offset 0.
	c.Reset()
	again, _ := c.Poll(100)
	if len(again) != 5 {
		t.Fatalf("redelivery: %d", len(again))
	}
	if again[0].Offset != 0 {
		t.Errorf("redelivery start: %d", again[0].Offset)
	}
	// Commit, then reset: no redelivery.
	c.Commit()
	c.Reset()
	final, _ := c.Poll(100)
	if len(final) != 0 {
		t.Errorf("after commit+reset: %d", len(final))
	}
}

func TestIndependentGroups(t *testing.T) {
	b := newTopicBroker(t, 1, 100)
	for i := 0; i < 4; i++ {
		b.Publish("postings", "k", nil)
	}
	c1, _ := b.Subscribe("postings", "group-a")
	c2, _ := b.Subscribe("postings", "group-b")
	m1, _ := c1.Poll(100)
	c1.Commit()
	m2, _ := c2.Poll(100)
	if len(m1) != 4 || len(m2) != 4 {
		t.Errorf("groups should read independently: %d %d", len(m1), len(m2))
	}
}

func TestTryPublishBackpressure(t *testing.T) {
	b := newTopicBroker(t, 1, 3)
	for i := 0; i < 3; i++ {
		if _, err := b.TryPublish("postings", "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.TryPublish("postings", "k", nil); !errors.Is(err, ErrFull) {
		t.Errorf("full partition: %v", err)
	}
	// Consuming and committing frees space.
	c, _ := b.Subscribe("postings", "g")
	c.Poll(100)
	c.Commit()
	if _, err := b.TryPublish("postings", "k", nil); err != nil {
		t.Errorf("after drain: %v", err)
	}
}

func TestPublishBlocksUntilConsumed(t *testing.T) {
	b := newTopicBroker(t, 1, 2)
	b.Publish("postings", "k", nil)
	b.Publish("postings", "k", nil)

	unblocked := make(chan struct{})
	go func() {
		b.Publish("postings", "k", nil) // blocks: capacity 2
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("publish should have blocked")
	case <-time.After(20 * time.Millisecond):
	}
	c, _ := b.Subscribe("postings", "g")
	c.Poll(100)
	c.Commit()
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("publish did not unblock after drain")
	}
}

func TestPollWait(t *testing.T) {
	b := newTopicBroker(t, 1, 10)
	c, _ := b.Subscribe("postings", "g")
	start := time.Now()
	msgs, err := c.PollWait(10, 30*time.Millisecond)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("empty pollwait: %v %d", err, len(msgs))
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Error("pollwait returned too early")
	}
	// With data available it returns promptly.
	go func() {
		time.Sleep(5 * time.Millisecond)
		b.Publish("postings", "k", nil)
	}()
	msgs, err = c.PollWait(10, 2*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("pollwait with data: %v %d", err, len(msgs))
	}
}

func TestShardedConsumers(t *testing.T) {
	b := newTopicBroker(t, 4, 100)
	for i := 0; i < 40; i++ {
		b.Publish("postings", fmt.Sprintf("k%d", i), nil)
	}
	c0, err := b.SubscribeShard("postings", "g", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := b.SubscribeShard("postings", "g", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m0, _ := c0.Poll(100)
	m1, _ := c1.Poll(100)
	if len(m0)+len(m1) != 40 {
		t.Errorf("shards: %d + %d", len(m0), len(m1))
	}
	// No partition overlap.
	p0 := map[int]bool{}
	for _, m := range m0 {
		p0[m.Partition] = true
	}
	for _, m := range m1 {
		if p0[m.Partition] {
			t.Fatal("partition served by two shard members")
		}
	}
	if _, err := b.SubscribeShard("postings", "g", 5, 2); !errors.Is(err, ErrConfig) {
		t.Errorf("bad shard: %v", err)
	}
}

func TestLag(t *testing.T) {
	b := newTopicBroker(t, 2, 100)
	for i := 0; i < 6; i++ {
		b.Publish("postings", fmt.Sprintf("k%d", i), nil)
	}
	lag, err := b.Lag("postings", "g")
	if err != nil || lag != 6 {
		t.Errorf("initial lag: %d %v", lag, err)
	}
	c, _ := b.Subscribe("postings", "g")
	c.Poll(100)
	c.Commit()
	lag, _ = b.Lag("postings", "g")
	if lag != 0 {
		t.Errorf("drained lag: %d", lag)
	}
}

func TestBrokerClose(t *testing.T) {
	b := newTopicBroker(t, 1, 1)
	b.Publish("postings", "k", nil)
	done := make(chan error, 1)
	go func() {
		_, err := b.Publish("postings", "k", nil) // blocks on full partition
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("blocked publish after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake producer")
	}
	if _, err := b.Publish("postings", "k", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("publish after close: %v", err)
	}
	b.Close() // idempotent
}

func TestConsumerClosed(t *testing.T) {
	b := newTopicBroker(t, 1, 10)
	c, _ := b.Subscribe("postings", "g")
	c.Close()
	if _, err := c.Poll(1); !errors.Is(err, ErrClosed) {
		t.Errorf("poll: %v", err)
	}
	if err := c.Commit(); !errors.Is(err, ErrClosed) {
		t.Errorf("commit: %v", err)
	}
	if err := c.Reset(); !errors.Is(err, ErrClosed) {
		t.Errorf("reset: %v", err)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := newTopicBroker(t, 4, 256)
	const total = 2000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < total/4; i++ {
				if _, err := b.Publish("postings", fmt.Sprintf("outlet-%d", i%13), []byte{byte(w)}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(w)
	}
	received := make(chan int, 4)
	for m := 0; m < 2; m++ {
		go func(m int) {
			c, err := b.SubscribeShard("postings", "g", m, 2)
			if err != nil {
				t.Errorf("subscribe: %v", err)
				received <- 0
				return
			}
			count := 0
			idle := 0
			for idle < 50 {
				msgs, _ := c.PollWait(64, 10*time.Millisecond)
				if len(msgs) == 0 {
					idle++
					continue
				}
				idle = 0
				count += len(msgs)
				c.Commit()
			}
			received <- count
		}(m)
	}
	wg.Wait()
	got := <-received + <-received
	if got != total {
		t.Errorf("received %d of %d", got, total)
	}
}

func TestVirtualClock(t *testing.T) {
	now := time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)
	b := NewBrokerWithClock(func() time.Time { return now })
	b.CreateTopic("t", TopicConfig{Partitions: 1})
	b.Publish("t", "k", nil)
	c, _ := b.Subscribe("t", "g")
	msgs, _ := c.Poll(1)
	if !msgs[0].Time.Equal(now) {
		t.Errorf("virtual time: %v", msgs[0].Time)
	}
}
