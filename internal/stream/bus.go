package stream

import (
	"sync"
	"sync/atomic"
)

// Bus is a lightweight in-process pub/sub fan-out: the ingestion pipeline
// publishes each committed assessment and any number of subscribers (the
// GET /api/stream SSE handlers) receive it on a buffered channel. Delivery
// is best-effort per subscriber: a subscriber that cannot keep up has
// messages dropped (and counted) rather than stalling the publisher — the
// live feed is a notification stream, not a durable log.
type Bus struct {
	mu     sync.Mutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	published atomic.Uint64
	dropped   atomic.Uint64
}

// Subscription is one subscriber's feed. Receive from C; the channel is
// closed when the subscription is cancelled or the bus closes.
type Subscription struct {
	// C delivers published payloads in publish order.
	C <-chan []byte

	bus     *Bus
	id      uint64
	ch      chan []byte
	dropped atomic.Uint64
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[uint64]*Subscription)}
}

// Subscribe registers a subscriber with the given channel buffer
// (default 64). Cancel the subscription when done or its buffer keeps
// dropping messages.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan []byte, buffer)
	sub := &Subscription{C: ch, bus: b, id: b.nextID, ch: ch}
	if b.closed {
		close(ch)
		return sub
	}
	b.nextID++
	b.subs[sub.id] = sub
	return sub
}

// Cancel removes the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if _, ok := s.bus.subs[s.id]; !ok {
		return
	}
	delete(s.bus.subs, s.id)
	close(s.ch)
}

// Dropped returns how many messages this subscriber missed because its
// buffer was full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Publish fans the payload out to every subscriber without blocking and
// returns the delivered count. Subscribers must not modify the payload.
func (b *Bus) Publish(payload []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	b.published.Add(1)
	delivered := 0
	for _, sub := range b.subs {
		select {
		case sub.ch <- payload:
			delivered++
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
		}
	}
	return delivered
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// BusStats is a snapshot of the bus counters.
type BusStats struct {
	// Subscribers is the current subscriber count.
	Subscribers int
	// Published counts Publish calls; Dropped counts per-subscriber
	// deliveries lost to full buffers.
	Published, Dropped uint64
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	return BusStats{
		Subscribers: b.Subscribers(),
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
	}
}

// Close cancels every subscription; further publishes are dropped. Safe to
// call more than once.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.ch)
	}
}
