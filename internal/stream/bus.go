package stream

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Live-feed telemetry. Drops were previously visible only as an
// aggregate on /api/stats; the registry counter plus SubscriberStats
// make lossy feeds attributable to the subscriber that cannot keep up.
var (
	mFeedPublished = obs.NewCounter("scilens_feed_published_total",
		"Assessments published to the live SSE feed.")
	mFeedDropped = obs.NewCounter("scilens_feed_dropped_total",
		"Feed deliveries dropped because a subscriber's buffer was full.")
	mFeedSubscribers = obs.NewGauge("scilens_feed_subscribers",
		"Currently connected live-feed subscribers.")
)

// Bus is a lightweight in-process pub/sub fan-out: the ingestion pipeline
// publishes each committed assessment and any number of subscribers (the
// GET /api/stream SSE handlers) receive it on a buffered channel. Delivery
// is best-effort per subscriber: a subscriber that cannot keep up has
// messages dropped (and counted) rather than stalling the publisher — the
// live feed is a notification stream, not a durable log.
type Bus struct {
	mu     sync.Mutex
	subs   map[uint64]*Subscription
	nextID uint64
	closed bool

	published atomic.Uint64
	dropped   atomic.Uint64
}

// Subscription is one subscriber's feed. Receive from C; the channel is
// closed when the subscription is cancelled or the bus closes.
type Subscription struct {
	// C delivers published payloads in publish order.
	C <-chan []byte

	bus     *Bus
	id      uint64
	ch      chan []byte
	dropped atomic.Uint64
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[uint64]*Subscription)}
}

// Subscribe registers a subscriber with the given channel buffer
// (default 64). Cancel the subscription when done or its buffer keeps
// dropping messages.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan []byte, buffer)
	sub := &Subscription{C: ch, bus: b, id: b.nextID, ch: ch}
	if b.closed {
		close(ch)
		return sub
	}
	b.nextID++
	b.subs[sub.id] = sub
	return sub
}

// Cancel removes the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if _, ok := s.bus.subs[s.id]; !ok {
		return
	}
	delete(s.bus.subs, s.id)
	mFeedSubscribers.Add(-1)
	close(s.ch)
}

// Dropped returns how many messages this subscriber missed because its
// buffer was full.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// ID returns the bus-assigned subscriber ID (stable for the lifetime of
// the subscription; surfaced by SubscriberStats).
func (s *Subscription) ID() uint64 { return s.id }

// Publish fans the payload out to every subscriber without blocking and
// returns the delivered count. Subscribers must not modify the payload.
func (b *Bus) Publish(payload []byte) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	b.published.Add(1)
	mFeedPublished.Inc()
	delivered := 0
	for _, sub := range b.subs {
		select {
		case sub.ch <- payload:
			delivered++
		default:
			sub.dropped.Add(1)
			b.dropped.Add(1)
			mFeedDropped.Inc()
		}
	}
	return delivered
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// SubscriberStats is one live subscriber's delivery health, surfaced by
// GET /api/stats so a lossy feed can be pinned on the subscriber that
// cannot keep up.
type SubscriberStats struct {
	// ID is the bus-assigned subscriber ID.
	ID uint64 `json:"id"`
	// Dropped counts deliveries this subscriber missed (full buffer).
	Dropped uint64 `json:"dropped"`
	// Buffered is the current channel backlog; Capacity its bound.
	Buffered int `json:"buffered"`
	Capacity int `json:"capacity"`
}

// SubscriberStats snapshots every current subscriber, ordered by ID.
func (b *Bus) SubscriberStats() []SubscriberStats {
	b.mu.Lock()
	out := make([]SubscriberStats, 0, len(b.subs))
	for _, sub := range b.subs {
		out = append(out, SubscriberStats{
			ID:       sub.id,
			Dropped:  sub.dropped.Load(),
			Buffered: len(sub.ch),
			Capacity: cap(sub.ch),
		})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BusStats is a snapshot of the bus counters.
type BusStats struct {
	// Subscribers is the current subscriber count.
	Subscribers int
	// Published counts Publish calls; Dropped counts per-subscriber
	// deliveries lost to full buffers.
	Published, Dropped uint64
}

// Stats returns a snapshot of the bus counters.
func (b *Bus) Stats() BusStats {
	return BusStats{
		Subscribers: b.Subscribers(),
		Published:   b.published.Load(),
		Dropped:     b.dropped.Load(),
	}
}

// Close cancels every subscription; further publishes are dropped. Safe to
// call more than once.
func (b *Bus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		mFeedSubscribers.Add(-1)
		close(sub.ch)
	}
}
