package stream

// Rendezvous (highest-random-weight) routing for the pipeline's dynamic
// shard set. Every key scores every shard by mixing the key's hash with
// the shard's stable id; the highest score owns the key. The choice
// depends only on the id set — not on slice order — so growing the set
// from n to m shards moves only the keys whose new winner outranks their
// old one (an expected (m-n)/m fraction), and shrinking moves only the
// removed shards' keys. That minimal-movement property is what makes
// live resharding cheap: everything else keeps draining in place.

// keyHash64 is FNV-1a over the key, the 64-bit sibling of keyHash.
func keyHash64(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// hrwScore mixes a key hash with a shard id through a splitmix64
// finalizer: well-distributed per (key, id) pair, deterministic across
// processes and runs.
func hrwScore(keyH uint64, id int) uint64 {
	x := keyH ^ (uint64(id)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// rendezvous returns the member with the highest score for key. Ties
// (astronomically unlikely) break toward the lower id so the choice
// stays a pure function of the id set.
func rendezvous(key string, members []*pshard) *pshard {
	if len(members) == 1 {
		return members[0]
	}
	h := keyHash64(key)
	best := members[0]
	bestScore := hrwScore(h, best.id)
	for _, s := range members[1:] {
		sc := hrwScore(h, s.id)
		if sc > bestScore || (sc == bestScore && s.id < best.id) {
			best, bestScore = s, sc
		}
	}
	return best
}
