package mlcore

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrLengthMismatch is returned when prediction and label slices differ in
// length.
var ErrLengthMismatch = errors.New("mlcore: prediction/label length mismatch")

// ConfusionMatrix counts binary-classification outcomes.
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Confusion tabulates predictions against gold labels.
func Confusion(pred, gold []bool) (ConfusionMatrix, error) {
	var m ConfusionMatrix
	if len(pred) != len(gold) {
		return m, ErrLengthMismatch
	}
	for i := range pred {
		switch {
		case pred[i] && gold[i]:
			m.TP++
		case pred[i] && !gold[i]:
			m.FP++
		case !pred[i] && gold[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	return m, nil
}

// Accuracy returns (TP+TN)/total, 0 for the empty matrix.
func (m ConfusionMatrix) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (m ConfusionMatrix) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (m ConfusionMatrix) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall, 0 when undefined.
func (m ConfusionMatrix) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// AUC computes the area under the ROC curve from scores and binary labels
// using the rank statistic (ties get average rank). Returns 0.5 when one
// class is absent.
func AUC(scores []float64, labels []bool) (float64, error) {
	if len(scores) != len(labels) {
		return 0, ErrLengthMismatch
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Average ranks over ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var pos, sumPos float64
	for i, l := range labels {
		if l {
			pos++
			sumPos += ranks[i]
		}
	}
	neg := float64(n) - pos
	if pos == 0 || neg == 0 {
		return 0.5, nil
	}
	return (sumPos - pos*(pos+1)/2) / (pos * neg), nil
}

// TrainTestSplit shuffles indices 0..n-1 with the given rng and splits them
// so that test receives ceil(n*testFrac) items. testFrac is clamped to
// [0, 1].
func TrainTestSplit(n int, testFrac float64, rng *rand.Rand) (train, test []int) {
	if testFrac < 0 {
		testFrac = 0
	}
	if testFrac > 1 {
		testFrac = 1
	}
	idx := rng.Perm(n)
	cut := int(math.Ceil(float64(n) * testFrac))
	return idx[cut:], idx[:cut]
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, 0 for fewer than 2 items.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median, 0 for empty input. The input is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}
