package mlcore

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSparseDot(t *testing.T) {
	a := SparseVector{0: 1, 2: 3}
	b := SparseVector{0: 2, 1: 5, 2: 4}
	if got := a.Dot(b); !almostEq(got, 14) {
		t.Errorf("dot: got %v want 14", got)
	}
	if got := b.Dot(a); !almostEq(got, 14) {
		t.Errorf("dot commutes: got %v", got)
	}
	if got := a.Dot(SparseVector{}); got != 0 {
		t.Errorf("dot with empty: %v", got)
	}
}

func TestSparseDotDense(t *testing.T) {
	v := SparseVector{0: 1, 3: 2, 99: 5}
	w := []float64{10, 0, 0, 4}
	if got := v.DotDense(w); !almostEq(got, 18) {
		t.Errorf("got %v want 18 (out-of-range index ignored)", got)
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := SparseVector{0: 3, 1: 4}
	if got := v.Norm(); !almostEq(got, 5) {
		t.Errorf("norm: got %v", got)
	}
	v.L2Normalize()
	if got := v.Norm(); !almostEq(got, 1) {
		t.Errorf("normalized norm: got %v", got)
	}
	zero := SparseVector{}
	zero.L2Normalize() // must not panic or NaN
	if zero.Norm() != 0 {
		t.Error("zero vector should stay zero")
	}
}

func TestScaleAdd(t *testing.T) {
	v := SparseVector{0: 1}
	v.Add(SparseVector{0: 2, 1: 3}, 2)
	if !almostEq(v[0], 5) || !almostEq(v[1], 6) {
		t.Errorf("add: %v", v)
	}
	v.Scale(0.5)
	if !almostEq(v[0], 2.5) {
		t.Errorf("scale: %v", v)
	}
}

func TestCosine(t *testing.T) {
	a := SparseVector{0: 1, 1: 0}
	b := SparseVector{0: 2, 1: 0}
	if got := Cosine(a, b); !almostEq(got, 1) {
		t.Errorf("parallel: %v", got)
	}
	c := SparseVector{1: 1}
	if got := Cosine(a, c); !almostEq(got, 0) {
		t.Errorf("orthogonal: %v", got)
	}
	if got := Cosine(a, SparseVector{}); got != 0 {
		t.Errorf("zero: %v", got)
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	// Restrict magnitudes so norms cannot overflow; within that domain the
	// similarity must stay in [-1, 1] and never be NaN.
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	check := func(xs, ys []float64) bool {
		a, b := SparseVector{}, SparseVector{}
		for i, x := range xs {
			a[i] = clamp(x)
		}
		for i, y := range ys {
			b[i] = clamp(y)
		}
		c := Cosine(a, b)
		return !math.IsNaN(c) && c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	v := SparseVector{0: 1}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("clone aliases original")
	}
}

func TestTopK(t *testing.T) {
	v := SparseVector{0: 1, 1: 5, 2: 3, 3: 5}
	got := v.TopK(3)
	// Ties (1 and 3, both 5) break on index.
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Errorf("topk: %v", got)
	}
	if got := v.TopK(10); len(got) != 4 {
		t.Errorf("topk overflow: %v", got)
	}
}

func TestVectorString(t *testing.T) {
	v := SparseVector{2: 1, 0: 0.5}
	if got := v.String(); got != "{0:0.5 2:1}" {
		t.Errorf("string: %q", got)
	}
}

func TestDenseHelpers(t *testing.T) {
	dst := []float64{1, 2}
	DenseAdd(dst, []float64{10, 20}, 0.1)
	if !almostEq(dst[0], 2) || !almostEq(dst[1], 4) {
		t.Errorf("dense add: %v", dst)
	}
	if got := EuclideanDistance([]float64{0, 0}, []float64{3, 4}); !almostEq(got, 5) {
		t.Errorf("distance: %v", got)
	}
}
