package mlcore

import (
	"math"
	"sort"
)

// Vocabulary maps terms to stable feature indices. Terms are assigned
// indices in first-seen order during fitting.
type Vocabulary struct {
	index map[string]int
	terms []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// Add returns the index for term, inserting it if new.
func (v *Vocabulary) Add(term string) int {
	if i, ok := v.index[term]; ok {
		return i
	}
	i := len(v.terms)
	v.index[term] = i
	v.terms = append(v.terms, term)
	return i
}

// Lookup returns the index for term and whether it is known.
func (v *Vocabulary) Lookup(term string) (int, bool) {
	i, ok := v.index[term]
	return i, ok
}

// Term returns the term at index i, or "" when out of range.
func (v *Vocabulary) Term(i int) string {
	if i < 0 || i >= len(v.terms) {
		return ""
	}
	return v.terms[i]
}

// Size returns the number of terms.
func (v *Vocabulary) Size() int { return len(v.terms) }

// TFIDF is a fitted TF-IDF vectoriser: it holds the vocabulary and the
// per-term inverse document frequencies.
type TFIDF struct {
	// Vocab is the fitted vocabulary.
	Vocab *Vocabulary
	// IDF holds smooth inverse document frequencies, indexed by term index.
	IDF []float64
	// MinDF is the minimum document frequency a term needed to be kept.
	MinDF int
	docs  int
}

// FitTFIDF builds a vectoriser from tokenised documents. Terms occurring in
// fewer than minDF documents are dropped (minDF < 1 is treated as 1). The
// IDF uses the smooth formulation ln((1+n)/(1+df)) + 1.
func FitTFIDF(docs [][]string, minDF int) *TFIDF {
	if minDF < 1 {
		minDF = 1
	}
	df := make(map[string]int)
	for _, doc := range docs {
		seen := make(map[string]struct{}, len(doc))
		for _, term := range doc {
			if _, dup := seen[term]; dup {
				continue
			}
			seen[term] = struct{}{}
			df[term]++
		}
	}
	// Deterministic vocabulary order: sort surviving terms.
	kept := make([]string, 0, len(df))
	for term, n := range df {
		if n >= minDF {
			kept = append(kept, term)
		}
	}
	sort.Strings(kept)

	t := &TFIDF{Vocab: NewVocabulary(), MinDF: minDF, docs: len(docs)}
	t.IDF = make([]float64, 0, len(kept))
	for _, term := range kept {
		t.Vocab.Add(term)
		idf := math.Log(float64(1+len(docs))/float64(1+df[term])) + 1
		t.IDF = append(t.IDF, idf)
	}
	return t
}

// Transform converts one tokenised document into an L2-normalised TF-IDF
// sparse vector. Unknown terms are ignored.
func (t *TFIDF) Transform(doc []string) SparseVector {
	counts := make(map[int]int)
	for _, term := range doc {
		if i, ok := t.Vocab.Lookup(term); ok {
			counts[i]++
		}
	}
	v := make(SparseVector, len(counts))
	for i, c := range counts {
		v[i] = float64(c) * t.IDF[i]
	}
	return v.L2Normalize()
}

// TransformAll maps Transform over a corpus.
func (t *TFIDF) TransformAll(docs [][]string) []SparseVector {
	out := make([]SparseVector, len(docs))
	for i, d := range docs {
		out[i] = t.Transform(d)
	}
	return out
}

// NumDocs returns the number of documents the vectoriser was fitted on.
func (t *TFIDF) NumDocs() int { return t.docs }

// HashFeatures maps terms into a fixed-size feature space via FNV-1a
// feature hashing (the "hashing trick"); dim must be positive. Collisions
// simply add. The result is L2-normalised.
func HashFeatures(terms []string, dim int) SparseVector {
	v := make(SparseVector)
	for _, term := range terms {
		h := fnv1a(term)
		idx := int(h % uint64(dim))
		v[idx]++
	}
	return v.L2Normalize()
}

// fnv1a is the 64-bit FNV-1a hash.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
