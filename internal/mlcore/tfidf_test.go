package mlcore

import (
	"math"
	"testing"
	"testing/quick"
)

var tinyCorpus = [][]string{
	{"virus", "spreads", "fast"},
	{"virus", "vaccine", "trial"},
	{"vaccine", "trial", "results"},
	{"economy", "markets", "fall"},
}

func TestFitTFIDFVocabulary(t *testing.T) {
	tf := FitTFIDF(tinyCorpus, 1)
	if tf.Vocab.Size() != 9 {
		t.Errorf("vocab size: got %d want 9", tf.Vocab.Size())
	}
	if _, ok := tf.Vocab.Lookup("virus"); !ok {
		t.Error("virus missing from vocab")
	}
	if tf.NumDocs() != 4 {
		t.Errorf("docs: got %d", tf.NumDocs())
	}
}

func TestFitTFIDFMinDF(t *testing.T) {
	tf := FitTFIDF(tinyCorpus, 2)
	// Only "virus", "vaccine", "trial" appear in >= 2 docs.
	if tf.Vocab.Size() != 3 {
		t.Errorf("vocab size with minDF=2: got %d want 3", tf.Vocab.Size())
	}
	if _, ok := tf.Vocab.Lookup("economy"); ok {
		t.Error("economy should be pruned")
	}
}

func TestTFIDFRareTermsWeighMore(t *testing.T) {
	tf := FitTFIDF(tinyCorpus, 1)
	iVirus, _ := tf.Vocab.Lookup("virus")  // df=2
	iEcon, _ := tf.Vocab.Lookup("economy") // df=1
	if tf.IDF[iEcon] <= tf.IDF[iVirus] {
		t.Errorf("rare term IDF %v should exceed common term IDF %v",
			tf.IDF[iEcon], tf.IDF[iVirus])
	}
}

func TestTransformNormalized(t *testing.T) {
	tf := FitTFIDF(tinyCorpus, 1)
	v := tf.Transform([]string{"virus", "vaccine", "unknownterm"})
	if got := v.Norm(); math.Abs(got-1) > 1e-9 {
		t.Errorf("norm: got %v want 1", got)
	}
	if len(v) != 2 {
		t.Errorf("unknown term should be dropped: %v", v)
	}
}

func TestTransformEmptyDoc(t *testing.T) {
	tf := FitTFIDF(tinyCorpus, 1)
	v := tf.Transform(nil)
	if len(v) != 0 {
		t.Errorf("empty doc: %v", v)
	}
}

func TestTransformAll(t *testing.T) {
	tf := FitTFIDF(tinyCorpus, 1)
	vs := tf.TransformAll(tinyCorpus)
	if len(vs) != 4 {
		t.Fatalf("got %d vectors", len(vs))
	}
	// Docs sharing terms should be more similar than unrelated docs.
	simRelated := Cosine(vs[1], vs[2])   // share vaccine, trial
	simUnrelated := Cosine(vs[0], vs[3]) // share nothing
	if simRelated <= simUnrelated {
		t.Errorf("related %v should exceed unrelated %v", simRelated, simUnrelated)
	}
}

func TestVocabularyDeterminism(t *testing.T) {
	a := FitTFIDF(tinyCorpus, 1)
	b := FitTFIDF(tinyCorpus, 1)
	for i := 0; i < a.Vocab.Size(); i++ {
		if a.Vocab.Term(i) != b.Vocab.Term(i) {
			t.Fatalf("vocab order not deterministic at %d: %q vs %q",
				i, a.Vocab.Term(i), b.Vocab.Term(i))
		}
	}
}

func TestVocabularyTermOutOfRange(t *testing.T) {
	v := NewVocabulary()
	v.Add("x")
	if v.Term(-1) != "" || v.Term(5) != "" {
		t.Error("out of range should return empty")
	}
	if v.Term(0) != "x" {
		t.Error("term 0")
	}
	if v.Add("x") != 0 {
		t.Error("re-add should return existing index")
	}
}

func TestHashFeatures(t *testing.T) {
	v := HashFeatures([]string{"a", "b", "a"}, 64)
	if got := v.Norm(); math.Abs(got-1) > 1e-9 {
		t.Errorf("norm: %v", got)
	}
	for i := range v {
		if i < 0 || i >= 64 {
			t.Errorf("index out of range: %d", i)
		}
	}
	// Same input, same output.
	w := HashFeatures([]string{"a", "b", "a"}, 64)
	for i, x := range v {
		if !almostEq(w[i], x) {
			t.Error("hashing not deterministic")
		}
	}
}

func TestHashFeaturesIndexRangeProperty(t *testing.T) {
	check := func(terms []string) bool {
		v := HashFeatures(terms, 128)
		for i := range v {
			if i < 0 || i >= 128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
