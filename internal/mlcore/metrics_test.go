package mlcore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionAndDerivedMetrics(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	gold := []bool{true, false, false, true, true}
	m, err := Confusion(pred, gold)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP != 2 || m.FP != 1 || m.TN != 1 || m.FN != 1 {
		t.Fatalf("confusion: %+v", m)
	}
	if !almostEq(m.Accuracy(), 0.6) {
		t.Errorf("accuracy: %v", m.Accuracy())
	}
	if !almostEq(m.Precision(), 2.0/3) {
		t.Errorf("precision: %v", m.Precision())
	}
	if !almostEq(m.Recall(), 2.0/3) {
		t.Errorf("recall: %v", m.Recall())
	}
	if !almostEq(m.F1(), 2.0/3) {
		t.Errorf("f1: %v", m.F1())
	}
}

func TestConfusionLengthMismatch(t *testing.T) {
	if _, err := Confusion([]bool{true}, nil); err != ErrLengthMismatch {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
}

func TestMetricsUndefinedCases(t *testing.T) {
	var m ConfusionMatrix
	if m.Accuracy() != 0 || m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 {
		t.Error("empty matrix metrics should be 0")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, true, false, false}
	auc, err := AUC(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(auc, 1.0) {
		t.Errorf("perfect AUC: %v", auc)
	}
	// Inverted scores: AUC 0.
	auc, _ = AUC([]float64{0.1, 0.2, 0.8, 0.9}, labels)
	if !almostEq(auc, 0) {
		t.Errorf("inverted AUC: %v", auc)
	}
	// One-class degenerate: 0.5.
	auc, _ = AUC([]float64{0.1, 0.2}, []bool{true, true})
	if !almostEq(auc, 0.5) {
		t.Errorf("one-class AUC: %v", auc)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal: AUC must be 0.5 by average-rank convention.
	auc, err := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(auc, 0.5) {
		t.Errorf("tied AUC: %v", auc)
	}
}

func TestAUCRangeProperty(t *testing.T) {
	check := func(scores []float64, seed int64) bool {
		for _, s := range scores {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return true
			}
		}
		rng := rand.New(rand.NewSource(seed))
		labels := make([]bool, len(scores))
		for i := range labels {
			labels[i] = rng.Intn(2) == 0
		}
		auc, err := AUC(scores, labels)
		if err != nil {
			return false
		}
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train, test := TrainTestSplit(10, 0.3, rng)
	if len(test) != 3 || len(train) != 7 {
		t.Fatalf("split sizes: train=%d test=%d", len(train), len(test))
	}
	seen := make(map[int]bool)
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Fatalf("indices lost: %d", len(seen))
	}
	// Clamping.
	train, test = TrainTestSplit(4, 1.5, rng)
	if len(train) != 0 || len(test) != 4 {
		t.Error("clamp high")
	}
	train, test = TrainTestSplit(4, -1, rng)
	if len(train) != 4 || len(test) != 0 {
		t.Error("clamp low")
	}
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(xs), 5) {
		t.Errorf("mean: %v", Mean(xs))
	}
	if !almostEq(Variance(xs), 4) {
		t.Errorf("variance: %v", Variance(xs))
	}
	if !almostEq(StdDev(xs), 2) {
		t.Errorf("std: %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases")
	}
}

func TestMedianQuantile(t *testing.T) {
	if !almostEq(Median([]float64{3, 1, 2}), 2) {
		t.Error("odd median")
	}
	if !almostEq(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Error("even median")
	}
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	xs := []float64{1, 2, 3, 4, 5}
	if !almostEq(Quantile(xs, 0), 1) || !almostEq(Quantile(xs, 1), 5) {
		t.Error("quantile extremes")
	}
	if !almostEq(Quantile(xs, 0.5), 3) {
		t.Errorf("q50: %v", Quantile(xs, 0.5))
	}
	if !almostEq(Quantile(xs, 0.25), 2) {
		t.Errorf("q25: %v", Quantile(xs, 0.25))
	}
	// Input must not be mutated.
	ys := []float64{3, 1, 2}
	Median(ys)
	if ys[0] != 3 {
		t.Error("median mutated input")
	}
}
