// Package mlcore provides the machine-learning primitives shared by the
// SciLens model zoo: sparse and dense vectors, a TF-IDF vectoriser, feature
// hashing, dataset splitting and evaluation metrics.
package mlcore

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is a feature-index → value map. The zero value is an empty
// (all-zero) vector.
type SparseVector map[int]float64

// Dot returns the dot product of two sparse vectors. It iterates the
// smaller operand for efficiency.
func (v SparseVector) Dot(w SparseVector) float64 {
	a, b := v, w
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for i, x := range a {
		if y, ok := b[i]; ok {
			sum += x * y
		}
	}
	return sum
}

// DotDense returns the dot product of the sparse vector with a dense weight
// slice; indices beyond len(w) contribute zero.
func (v SparseVector) DotDense(w []float64) float64 {
	sum := 0.0
	for i, x := range v {
		if i >= 0 && i < len(w) {
			sum += x * w[i]
		}
	}
	return sum
}

// Norm returns the Euclidean norm.
func (v SparseVector) Norm() float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Scale multiplies every component in place and returns the receiver.
func (v SparseVector) Scale(k float64) SparseVector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Add accumulates w into v (v += k*w) and returns v.
func (v SparseVector) Add(w SparseVector, k float64) SparseVector {
	for i, x := range w {
		v[i] += k * x
	}
	return v
}

// L2Normalize scales v to unit norm in place (no-op for the zero vector)
// and returns v.
func (v SparseVector) L2Normalize() SparseVector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Cosine returns the cosine similarity of two sparse vectors, 0 when either
// is zero.
func Cosine(a, b SparseVector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return a.Dot(b) / (na * nb)
}

// Clone returns a deep copy of the vector.
func (v SparseVector) Clone() SparseVector {
	out := make(SparseVector, len(v))
	for i, x := range v {
		out[i] = x
	}
	return out
}

// TopK returns the k indices with the largest values, descending. Ties
// break on index for determinism.
func (v SparseVector) TopK(k int) []int {
	type pair struct {
		idx int
		val float64
	}
	pairs := make([]pair, 0, len(v))
	for i, x := range v {
		pairs = append(pairs, pair{i, x})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].val != pairs[j].val {
			return pairs[i].val > pairs[j].val
		}
		return pairs[i].idx < pairs[j].idx
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = pairs[i].idx
	}
	return out
}

// String renders the vector with indices sorted, for stable test output.
func (v SparseVector) String() string {
	idx := make([]int, 0, len(v))
	for i := range v {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	s := "{"
	for n, i := range idx {
		if n > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.4g", i, v[i])
	}
	return s + "}"
}

// DenseAdd adds k*src into dst element-wise; slices must be equal length.
func DenseAdd(dst, src []float64, k float64) {
	for i := range src {
		dst[i] += k * src[i]
	}
}

// EuclideanDistance returns the L2 distance between two equal-length dense
// vectors.
func EuclideanDistance(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
