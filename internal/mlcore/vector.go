// Package mlcore provides the machine-learning primitives shared by the
// SciLens model zoo: sparse and dense vectors, a TF-IDF vectoriser, feature
// hashing, dataset splitting and evaluation metrics.
package mlcore

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is a feature-index → value map. The zero value is an empty
// (all-zero) vector.
type SparseVector map[int]float64

// sortedIndices returns the vector's indices in ascending order. The dot
// products below sum in this order: Go randomises map iteration, and
// summing floats in a random order makes the low bits of a model score
// differ from call to call — which breaks the platform invariant that
// re-evaluating the same document under the same models is bit-identical
// (batch re-indexing vs. the real-time path).
func (v SparseVector) sortedIndices() []int {
	idx := make([]int, 0, len(v))
	for i := range v {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Indices returns the vector's indices in ascending order. Training loops
// that evaluate the same vector every epoch should call this once and use
// DotDenseAt, instead of paying DotDense's per-call collect-and-sort.
func (v SparseVector) Indices() []int { return v.sortedIndices() }

// DotDenseAt is DotDense with the iteration order supplied by the caller
// (typically a cached Indices() result); indices beyond len(w) contribute
// zero.
func (v SparseVector) DotDenseAt(idx []int, w []float64) float64 {
	sum := 0.0
	for _, i := range idx {
		if i >= 0 && i < len(w) {
			sum += v[i] * w[i]
		}
	}
	return sum
}

// DotAt is Dot with the iteration order over v supplied by the caller
// (typically a cached Indices() result).
func (v SparseVector) DotAt(idx []int, w SparseVector) float64 {
	sum := 0.0
	for _, i := range idx {
		if y, ok := w[i]; ok {
			sum += v[i] * y
		}
	}
	return sum
}

// NormAt is Norm with the iteration order supplied by the caller
// (typically a cached Indices() result).
func (v SparseVector) NormAt(idx []int) float64 {
	sum := 0.0
	for _, i := range idx {
		sum += v[i] * v[i]
	}
	return math.Sqrt(sum)
}

// Dot returns the dot product of two sparse vectors, summed in ascending
// index order of the smaller operand for run-to-run determinism.
func (v SparseVector) Dot(w SparseVector) float64 {
	a, b := v, w
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for _, i := range a.sortedIndices() {
		if y, ok := b[i]; ok {
			sum += a[i] * y
		}
	}
	return sum
}

// DotDense returns the dot product of the sparse vector with a dense weight
// slice, summed in ascending index order for run-to-run determinism;
// indices beyond len(w) contribute zero.
func (v SparseVector) DotDense(w []float64) float64 {
	sum := 0.0
	for _, i := range v.sortedIndices() {
		if i >= 0 && i < len(w) {
			sum += v[i] * w[i]
		}
	}
	return sum
}

// Norm returns the Euclidean norm, summed in ascending index order for
// run-to-run determinism.
func (v SparseVector) Norm() float64 {
	sum := 0.0
	for _, i := range v.sortedIndices() {
		sum += v[i] * v[i]
	}
	return math.Sqrt(sum)
}

// Scale multiplies every component in place and returns the receiver.
func (v SparseVector) Scale(k float64) SparseVector {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Add accumulates w into v (v += k*w) and returns v.
func (v SparseVector) Add(w SparseVector, k float64) SparseVector {
	for i, x := range w {
		v[i] += k * x
	}
	return v
}

// L2Normalize scales v to unit norm in place (no-op for the zero vector)
// and returns v.
func (v SparseVector) L2Normalize() SparseVector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Cosine returns the cosine similarity of two sparse vectors, 0 when either
// is zero. Each operand's index set is sorted once and reused for its norm
// and the dot product; hot loops that hold vectors fixed across calls
// (k-means assignment, say) should cache Indices()/NormAt and use CosineAt.
func Cosine(a, b SparseVector) float64 {
	ai, bi := a.sortedIndices(), b.sortedIndices()
	na, nb := a.NormAt(ai), b.NormAt(bi)
	if na == 0 || nb == 0 {
		return 0
	}
	if len(bi) < len(ai) {
		a, b, ai = b, a, bi
	}
	return a.DotAt(ai, b) / (na * nb)
}

// CosineAt is Cosine with both operands' sorted index sets and norms
// supplied by the caller (cached Indices()/NormAt results).
func CosineAt(a SparseVector, aIdx []int, aNorm float64, b SparseVector, bIdx []int, bNorm float64) float64 {
	if aNorm == 0 || bNorm == 0 {
		return 0
	}
	if len(bIdx) < len(aIdx) {
		a, b, aIdx = b, a, bIdx
	}
	return a.DotAt(aIdx, b) / (aNorm * bNorm)
}

// Clone returns a deep copy of the vector.
func (v SparseVector) Clone() SparseVector {
	out := make(SparseVector, len(v))
	for i, x := range v {
		out[i] = x
	}
	return out
}

// TopK returns the k indices with the largest values, descending. Ties
// break on index for determinism.
func (v SparseVector) TopK(k int) []int {
	type pair struct {
		idx int
		val float64
	}
	pairs := make([]pair, 0, len(v))
	for i, x := range v {
		pairs = append(pairs, pair{i, x})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].val != pairs[j].val {
			return pairs[i].val > pairs[j].val
		}
		return pairs[i].idx < pairs[j].idx
	})
	if k > len(pairs) {
		k = len(pairs)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = pairs[i].idx
	}
	return out
}

// String renders the vector with indices sorted, for stable test output.
func (v SparseVector) String() string {
	idx := make([]int, 0, len(v))
	for i := range v {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	s := "{"
	for n, i := range idx {
		if n > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.4g", i, v[i])
	}
	return s + "}"
}

// DenseAdd adds k*src into dst element-wise; slices must be equal length.
func DenseAdd(dst, src []float64, k float64) {
	for i := range src {
		dst[i] += k * src[i]
	}
}

// EuclideanDistance returns the L2 distance between two equal-length dense
// vectors.
func EuclideanDistance(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
