package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinism keeps replay/recovery and model-scoring code bit-stable
// across runs. WAL replay must rebuild the identical database twice in a
// row, and batch re-evaluation must equal realtime evaluation down to
// the last float ulp (PR 2's map-order float-summation bug broke exactly
// that). Inside the deterministic zones — internal/rdbms, internal/mlcore,
// internal/classify, internal/stream — wall clocks and the global
// math/rand state are banned (inject a clock or a seeded *rand.Rand
// instead), and float accumulators must not fold values in map iteration
// order. The stream zone exists for the adaptive-ingestion controller:
// its decisions must replay identically under a test clock, so every
// wall-clock read goes through the pipeline's injected Now (the few
// legitimate cadence-only sites carry explicit scilint:ignore
// annotations).
type determinism struct{}

func (determinism) Name() string { return "determinism" }

func (determinism) Doc() string {
	return "no wall clock, global rand, or map-order float accumulation in replay/scoring zones"
}

// timeDeny are the time functions that read the wall clock. Durations,
// tickers and timers are cadence, not data, and stay legal.
var timeDeny = map[string]bool{"Now": true, "Since": true, "Until": true}

// randDeny are the math/rand (and rand/v2) package-level functions backed
// by the process-global, randomly-seeded source. Constructing a *rand.Rand
// from an injected seed (rand.New(rand.NewSource(seed))) is the sanctioned
// pattern and is not listed.
var randDeny = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

func (d determinism) Run(p *Pass) {
	if !pathHasSegment(p.Path, "rdbms") && !pathHasSegment(p.Path, "mlcore") &&
		!pathHasSegment(p.Path, "classify") && !pathHasSegment(p.Path, "stream") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				id, ok := x.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if timeDeny[x.Sel.Name] {
						p.Reportf(x.Pos(), d.Name(),
							"time.%s in a deterministic zone: inject a clock so replay and re-evaluation stay reproducible", x.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if randDeny[x.Sel.Name] {
						p.Reportf(x.Pos(), d.Name(),
							"global rand.%s in a deterministic zone: use a *rand.Rand built from an injected seed", x.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				d.checkMapAccum(p, x)
			}
			return true
		})
	}
}

// checkMapAccum flags float accumulation inside `for range` over a map:
// the iteration order varies per run, and float addition is not
// associative, so the sum differs in the last ulp between runs.
func (d determinism) checkMapAccum(p *Pass, rs *ast.RangeStmt) {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// The iteration variables: an assignment target indexed by the range
	// key touches a distinct element each iteration and is therefore
	// order-independent (w[i] += v over a sparse map is fine; sum += v is
	// not).
	rangeVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := p.Info.Defs[id]; obj != nil {
				rangeVars[obj] = true
			} else if obj := p.Info.Uses[id]; obj != nil {
				rangeVars[obj] = true
			}
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		accum := false
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			accum = true
		case token.ASSIGN:
			// x = x + v spelled out.
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
					switch bin.Op {
					case token.ADD, token.SUB, token.MUL, token.QUO:
						lhs := types.ExprString(as.Lhs[0])
						accum = types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs
					}
				}
			}
		}
		if !accum {
			return true
		}
		for _, lhs := range as.Lhs {
			if isFloat(p.Info.TypeOf(lhs)) && declaredOutside(p, lhs, rs) && !usesRangeVar(p, lhs, rangeVars) {
				p.Reportf(as.Pos(), d.Name(),
					"float accumulation in map iteration order is nondeterministic: collect keys, sort, then sum")
			}
		}
		return true
	})
}

// usesRangeVar reports whether expr mentions one of the range's
// iteration variables (as an index, typically).
func usesRangeVar(p *Pass, expr ast.Expr, rangeVars map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && rangeVars[p.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// declaredOutside reports whether the accumulator variable under lhs
// outlives the range statement (a per-iteration temporary is harmless).
func declaredOutside(p *Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch x := lhs.(type) {
		case *ast.SelectorExpr:
			lhs = x.X
			continue
		case *ast.IndexExpr:
			lhs = x.X
			continue
		case *ast.StarExpr:
			lhs = x.X
			continue
		case *ast.ParenExpr:
			lhs = x.X
			continue
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj == nil {
				return true // no info: assume it escapes the loop
			}
			return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
		default:
			return true
		}
	}
}
