// Package stream is the determinism golden fixture for the ingestion
// zone: its "stream" path segment puts it in a deterministic zone, so
// the adaptive controller's decisions must come from an injected clock.
// Cadence-only sites (tickers, jittered retry backoff) are either legal
// by construction or carry explicit scilint:ignore annotations — both
// shapes are pinned here.
package stream

import (
	"math/rand"
	"time"
)

// Controller mirrors the adaptive pipeline's shape: an injected clock
// plus a seeded source for retry jitter.
type Controller struct {
	now func() time.Time
	rng *rand.Rand
}

// tickWall reads the wall clock to timestamp a control decision: the
// decision would replay differently under a test clock.
func (c *Controller) tickWall() int64 {
	return time.Now().UnixNano() // want determinism "time.Now in a deterministic zone"
}

// tickInjected goes through the injected clock: the sanctioned pattern.
func (c *Controller) tickInjected() int64 {
	return c.now().UnixNano()
}

// backlogAge compounds the bug with Since.
func backlogAge(enqueued time.Time) time.Duration {
	return time.Since(enqueued) // want determinism "time.Since in a deterministic zone"
}

// globalJitter draws retry backoff from the process-global source.
func globalJitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1)) // want determinism "global rand.Int63n in a deterministic zone"
}

// seededJitter uses the controller's injected-seed source: legal.
func (c *Controller) seededJitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// annotatedDefault pins the suppression idiom the real pipeline uses for
// its production-default clock: the ignore must silence the finding.
func annotatedDefault() func() time.Time {
	return time.Now //scilint:ignore determinism production default only; callers inject a clock in tests
}

// cadence proves tickers stay legal: a ticker paces work, it is not
// data, and no stored row depends on its firing times.
func cadence(interval time.Duration, stop chan struct{}, fn func()) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			fn()
		}
	}
}
