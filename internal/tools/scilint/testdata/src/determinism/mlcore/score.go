// Package mlcore is the determinism golden fixture: its "mlcore" path
// segment puts it in a deterministic zone, where wall clocks, the global
// rand state and map-order float accumulation are banned.
package mlcore

import (
	"math/rand"
	"time"
)

// Vector is a sparse vector, map-backed like the real mlcore one.
type Vector map[int]float64

// sumDirect folds float values in map iteration order: the classic
// last-ulp nondeterminism bug.
func sumDirect(v Vector) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x // want determinism "float accumulation in map iteration order"
	}
	return sum
}

// dotSpelledOut writes the accumulation as s = s + ... — same bug.
func dotSpelledOut(a, b Vector) float64 {
	s := 0.0
	for i, x := range a {
		s = s + x*b[i] // want determinism "float accumulation in map iteration order"
	}
	return s
}

// scatterAdd writes a distinct element per key: order-independent, legal.
func scatterAdd(dst []float64, v Vector) {
	for i, x := range v {
		dst[i] += x
	}
}

// intCount accumulates an int: no float rounding, legal.
func intCount(v Vector) int {
	n := 0
	for range v {
		n++
	}
	return n
}

// stamp reads the wall clock inside a scoring zone.
func stamp() time.Time {
	return time.Now() // want determinism "time.Now in a deterministic zone"
}

// age compounds it with Since.
func age(t time.Time) time.Duration {
	return time.Since(t) // want determinism "time.Since in a deterministic zone"
}

// jitter draws from the process-global rand source.
func jitter() float64 {
	return rand.Float64() // want determinism "global rand.Float64 in a deterministic zone"
}

// seeded builds an injected-seed source: the sanctioned pattern.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// sorted sums in sorted key order: deterministic, legal.
func sorted(v Vector, keys []int) float64 {
	sum := 0.0
	for _, k := range keys {
		sum += v[k]
	}
	return sum
}
