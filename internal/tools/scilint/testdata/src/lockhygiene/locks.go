// Package lockhygiene is the golden fixture for lock-path analysis and
// by-value mutex signatures.
package lockhygiene

import (
	"errors"
	"sync"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// leakOnError is the classic bug: the early return leaves mu held.
func leakOnError(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		return errors.New("boom") // want lockhygiene "return with c.mu held"
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// leakReadLock is the same bug under RLock.
func leakReadLock(c *counter) int {
	c.rw.RLock()
	if c.n < 0 {
		return 0 // want lockhygiene "return with c.rw (read lock) held"
	}
	n := c.n
	c.rw.RUnlock()
	return n
}

// deferred is fine on every path.
func deferred(c *counter, fail bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fail {
		return errors.New("boom")
	}
	c.n++
	return nil
}

// manualEveryPath unlocks explicitly on both paths.
func manualEveryPath(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errors.New("boom")
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// calledLocked is the syncPending idiom: the caller holds the lock, the
// helper drops and retakes it. Its first mutex operation is an unlock,
// which exempts it.
func calledLocked(c *counter, fail bool) error {
	c.mu.Unlock()
	work()
	c.mu.Lock()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// pairedLock intentionally returns with the lock held (its partner
// unlocks); a function with no unlocks at all is exempt.
func pairedLock(c *counter) {
	c.mu.Lock()
	c.n++
}

// loopScoped locks and unlocks per iteration; the return after the loop
// runs with nothing held.
func loopScoped(cs []*counter) int {
	total := 0
	for _, c := range cs {
		c.mu.Lock()
		total += c.n
		c.mu.Unlock()
	}
	return total
}

// deferredClosure counts as a deferred unlock.
func deferredClosure(c *counter, fail bool) error {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
	if fail {
		return errors.New("boom")
	}
	return nil
}

func work() {}

// byValueParam copies the embedded mutex before the function even runs.
func byValueParam(c counter) int { // want lockhygiene "parameter of byValueParam copies mutex-bearing counter"
	return c.n
}

// byValueResult hands a copy back.
func byValueResult() counter { // want lockhygiene "result of byValueResult copies mutex-bearing counter"
	return counter{}
}

// pointers everywhere: fine.
func byPointer(c *counter) *counter { return c }
