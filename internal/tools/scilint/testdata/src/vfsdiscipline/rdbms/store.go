// Package store is a vfsdiscipline golden fixture: it sits under an
// "rdbms" path segment, so every direct filesystem touch must be
// flagged while non-filesystem os uses stay legal.
package store

import (
	"io/ioutil" // want vfsdiscipline "io/ioutil import in rdbms"
	"os"
)

// persist hits the deny list three different ways.
func persist(path string, data []byte) error {
	if err := os.WriteFile(path, data, 0o644); err != nil { // want vfsdiscipline "direct os.WriteFile in rdbms"
		return err
	}
	if err := os.Rename(path, path+".bak"); err != nil { // want vfsdiscipline "direct os.Rename in rdbms"
		return err
	}
	f, err := os.Open(path) // want vfsdiscipline "direct os.Open in rdbms"
	if err != nil {
		return err
	}
	return f.Close()
}

// load uses the deprecated ioutil shim (flagged at the import).
func load(path string) ([]byte, error) {
	return ioutil.ReadFile(path)
}

// missing demonstrates the allowed, non-filesystem os surface.
func missing(err error) bool {
	return os.IsNotExist(err)
}
