// Package vfs is the one place under rdbms allowed to call the OS: the
// golden test asserts this file produces no findings at all.
package vfs

import "os"

// Rename is a pass-through to the OS.
func Rename(oldPath, newPath string) error {
	return os.Rename(oldPath, newPath)
}

// ReadFile is a pass-through to the OS.
func ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
