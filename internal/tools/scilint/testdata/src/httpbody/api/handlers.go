// Package api is the httpbody golden fixture: its "api" path segment
// puts handlers in scope, where every request-body read must pass
// through http.MaxBytesReader.
package api

import (
	"encoding/json"
	"io"
	"net/http"
)

// handleUnbounded decodes straight off the wire: an attacker-sized body
// lands in memory whole.
func handleUnbounded(w http.ResponseWriter, r *http.Request) {
	var v map[string]any
	_ = json.NewDecoder(r.Body).Decode(&v) // want httpbody "r.Body read without http.MaxBytesReader"
}

// handleSlurp is the io.ReadAll variant of the same hole.
func handleSlurp(w http.ResponseWriter, r *http.Request) {
	data, _ := io.ReadAll(r.Body) // want httpbody "r.Body read without http.MaxBytesReader"
	_ = data
}

// handleBounded wraps the body at the point of use: legal.
func handleBounded(w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	var v map[string]any
	_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&v)
}

// handleDelegating never touches the body itself: legal (the helper it
// calls is checked on its own).
func handleDelegating(w http.ResponseWriter, r *http.Request) {
	v := map[string]any{"ok": true}
	_ = json.NewEncoder(w).Encode(v)
}
