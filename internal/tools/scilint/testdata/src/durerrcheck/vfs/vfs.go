// Package vfs mirrors the real vfs layer's shape for the durerrcheck
// golden fixture: the analyzer matches durability methods by their
// defining package's "vfs" path segment, so these interfaces trigger it
// the same way internal/rdbms/vfs does.
package vfs

// File is one open handle.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS is the filesystem surface.
type FS interface {
	Create(path string) (File, error)
	Rename(oldPath, newPath string) error
	SyncDir(dir string) error
}
