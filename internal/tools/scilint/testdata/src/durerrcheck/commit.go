// Package durerrcheck is the golden fixture for the durability errcheck
// rule: discarded errors from vfs calls, WAL/DB/Platform methods and
// inline Closes must be flagged; checked, blank-assigned, deferred-Close
// and suppressed forms must not.
package durerrcheck

import "repro/internal/tools/scilint/testdata/src/durerrcheck/vfs"

// commit exercises the vfs durability surface.
func commit(fs vfs.FS, f vfs.File) error {
	f.Sync()                    // want durerrcheck "discarded error from f.Sync"
	fs.Rename("tmp", "final")   // want durerrcheck "discarded error from fs.Rename"
	fs.SyncDir(".")             // want durerrcheck "discarded error from fs.SyncDir"
	f.Close()                   // want durerrcheck "discarded error from f.Close"
	go f.Sync()                 // want durerrcheck "discarded error from f.Sync"
	defer f.Sync()              // want durerrcheck "discarded error from f.Sync"
	defer f.Close()             // deferred Close is the read-path cleanup idiom: allowed
	_ = f.Sync()                // blank assignment is an explicit decision: allowed
	if err := f.Sync(); err != nil {
		return err
	}
	f.Sync() //scilint:ignore durerrcheck fixture demonstrating an annotated, justified discard
	return f.Close()
}

// WAL, DB and Platform mirror the real storage types by name.
type WAL struct{}

func (l *WAL) append(p []byte) error { return nil }
func (l *WAL) Sync() error           { return nil }
func (l *WAL) Close() error          { return nil }

type DB struct{}

func (db *DB) Checkpoint() (int, error) { return 0, nil }
func (db *DB) Close() error             { return nil }

type Platform struct{}

func (p *Platform) Checkpoint() error { return nil }
func (p *Platform) Close() error      { return nil }

func writePath(l *WAL, db *DB, p *Platform) {
	l.append(nil)   // want durerrcheck "discarded error from l.append"
	l.Sync()        // want durerrcheck "discarded error from l.Sync"
	db.Checkpoint() // want durerrcheck "discarded error from db.Checkpoint"
	db.Close()      // want durerrcheck "discarded error from db.Close"
	p.Checkpoint()  // want durerrcheck "discarded error from p.Checkpoint"
	if err := l.Close(); err != nil {
		_ = err
	}
}
