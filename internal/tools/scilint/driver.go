package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one pluggable rule of the suite. Run inspects a single
// type-checked package and reports findings through the Pass.
type Analyzer interface {
	// Name is the rule identifier used in output ("[name]") and in
	// //scilint:ignore directives.
	Name() string
	// Doc is a one-line description for -list.
	Doc() string
	// Run analyzes one package.
	Run(p *Pass)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path (module-relative packages keep the module prefix)
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(pos token.Pos, rule, msg string)
}

// Reportf records one finding at pos under the given rule.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(pos, rule, fmt.Sprintf(format, args...))
}

// Finding is one diagnostic.
type Finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Rule, f.Msg)
}

// runAnalyzers loads every target directory and runs the selected
// analyzers over each, returning the unsuppressed findings sorted by
// position.
func runAnalyzers(ld *loader, dirs []string, selected []Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, dir := range dirs {
		pi, err := ld.Load(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		findings = append(findings, analyzePackage(ld, pi, selected)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// analyzePackage runs the selected analyzers over one loaded package and
// filters the results through the package's //scilint:ignore directives.
func analyzePackage(ld *loader, pi *pkgInfo, selected []Analyzer) []Finding {
	ignores, malformed := collectIgnores(ld.root, ld.fset, pi.files)

	var raw []Finding
	pass := &Pass{
		Fset:  ld.fset,
		Path:  pi.importPath,
		Files: pi.files,
		Pkg:   pi.pkg,
		Info:  pi.info,
	}
	pass.report = func(pos token.Pos, rule, msg string) {
		p := ld.fset.Position(pos)
		raw = append(raw, Finding{
			File: relPath(ld.root, p.Filename),
			Line: p.Line,
			Col:  p.Column,
			Rule: rule,
			Msg:  msg,
		})
	}
	for _, a := range selected {
		a.Run(pass)
	}

	var out []Finding
	for _, f := range raw {
		if ignores.suppresses(f) {
			continue
		}
		out = append(out, f)
	}
	return append(out, malformed...)
}

// ignoreSet maps file → line → rules suppressed on that line.
type ignoreSet map[string]map[int][]string

// suppresses reports whether a directive on the finding's line or the
// line directly above it names the finding's rule.
func (s ignoreSet) suppresses(f Finding) bool {
	lines := s[f.File]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, rule := range lines[line] {
			if rule == f.Rule {
				return true
			}
		}
	}
	return false
}

const ignoreMarker = "scilint:ignore"

// collectIgnores scans every comment for //scilint:ignore directives.
// A well-formed directive is "scilint:ignore <rule>[,<rule>] <reason>";
// a directive missing its rule or its reason is returned as a finding
// itself — silent, unexplained suppressions are exactly what the suite
// exists to prevent.
func collectIgnores(root string, fset *token.FileSet, files []*ast.File) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var malformed []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				p := fset.Position(c.Pos())
				file := relPath(root, p.Filename)
				fields := strings.Fields(strings.TrimPrefix(text, ignoreMarker))
				if len(fields) < 2 {
					malformed = append(malformed, Finding{
						File: file, Line: p.Line, Col: p.Column,
						Rule: "scilint",
						Msg:  "malformed suppression: want //scilint:ignore <rule>[,<rule>] <reason>",
					})
					continue
				}
				if set[file] == nil {
					set[file] = map[int][]string{}
				}
				set[file][p.Line] = append(set[file][p.Line], strings.Split(fields[0], ",")...)
			}
		}
	}
	return set, malformed
}

// relPath renders path relative to root when possible (findings read
// better and stay stable across checkouts); ignore directive filenames
// are rewritten the same way so suppression matching lines up.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// pathHasSegment reports whether a slash-separated import path contains
// seg as a whole segment. Zone checks match on segments so the golden
// fixture trees under testdata/ land in the same zones as the real code.
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
