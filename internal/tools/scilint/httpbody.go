package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// httpBody enforces the PR 2 request-hardening contract in internal/api:
// a request body is attacker-sized, so every read of r.Body must pass
// through http.MaxBytesReader at the point of use (the decodeJSON
// helpers do exactly this; handlers that delegate to them never touch
// r.Body and are trivially clean). r.Body.Close() is exempt — closing
// is not reading.
type httpBody struct{}

func (httpBody) Name() string { return "httpbody" }

func (httpBody) Doc() string {
	return "internal/api code must wrap every request-body read in http.MaxBytesReader"
}

func (h httpBody) Run(p *Pass) {
	if !pathHasSegment(p.Path, "api") {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			h.checkFunc(p, fd)
		}
	}
}

func (h httpBody) checkFunc(p *Pass, fd *ast.FuncDecl) {
	// Identify the *http.Request parameters.
	reqParams := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil || types.TypeString(t, nil) != "*net/http.Request" {
				continue
			}
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					reqParams[obj] = true
				}
			}
		}
	}
	if len(reqParams) == 0 {
		return
	}

	// Ranges in which a body reference is sanctioned: the argument list
	// of an http.MaxBytesReader call, or the receiver of .Close().
	type posRange struct{ lo, hi token.Pos }
	var allowed []posRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "MaxBytesReader" {
					allowed = append(allowed, posRange{x.Pos(), x.End()})
				}
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "Close" {
				allowed = append(allowed, posRange{x.X.Pos(), x.X.End()})
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !reqParams[p.Info.Uses[id]] {
			return true
		}
		for _, r := range allowed {
			if sel.Pos() >= r.lo && sel.End() <= r.hi {
				return true
			}
		}
		p.Reportf(sel.Pos(), h.Name(),
			"%s.Body read without http.MaxBytesReader: bound it (or use the decodeJSON helpers) so oversized requests get 413, not OOM",
			id.Name)
		return true
	})
}
