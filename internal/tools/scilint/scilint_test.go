package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The loader is shared across tests: stdlib packages type-check from
// GOROOT source exactly once per `go test` run.
var shared struct {
	once sync.Once
	root string
	ld   *loader
	err  error
}

func sharedLoader(t *testing.T) (*loader, string) {
	t.Helper()
	shared.once.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", "..", ".."))
		if err != nil {
			shared.err = err
			return
		}
		module, err := moduleName(filepath.Join(root, "go.mod"))
		if err != nil {
			shared.err = fmt.Errorf("locating repo root: %w", err)
			return
		}
		shared.root = root
		shared.ld = newLoader(root, module)
	})
	if shared.err != nil {
		t.Fatal(shared.err)
	}
	return shared.ld, shared.root
}

// want is one expected diagnostic parsed from a fixture comment of the
// form: // want <rule> "message substring"
type want struct {
	file string
	line int
	rule string
	sub  string
}

var wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]+)"`)

func parseWants(t *testing.T, root string, dirs []string) []want {
	t.Helper()
	var wants []want
	for _, dir := range dirs {
		names, err := goSources(filepath.Join(root, dir))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range names {
			path := filepath.Join(root, dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			rel := filepath.ToSlash(filepath.Join(dir, name))
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					wants = append(wants, want{file: rel, line: i + 1, rule: m[1], sub: m[2]})
				}
			}
		}
	}
	return wants
}

// checkFixture runs the full analyzer suite over the fixture dirs
// (repo-root relative) and asserts the findings match the want comments
// line by line, in both directions.
func checkFixture(t *testing.T, dirs ...string) {
	t.Helper()
	ld, root := sharedLoader(t)
	findings, err := runAnalyzers(ld, dirs, registry)
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, root, dirs)
	if len(wants) == 0 {
		t.Fatalf("fixture %v declares no // want comments", dirs)
	}

	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if !matched[i] && f.File == w.file && f.Line == w.line && f.Rule == w.rule && strings.Contains(f.Msg, w.sub) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing finding: %s:%d: [%s] ...%s...", w.file, w.line, w.rule, w.sub)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

const fixtures = "internal/tools/scilint/testdata/src"

func TestVFSDisciplineGolden(t *testing.T) {
	checkFixture(t, fixtures+"/vfsdiscipline/rdbms")
}

func TestVFSDisciplineExemptsVFSPackage(t *testing.T) {
	ld, _ := sharedLoader(t)
	findings, err := runAnalyzers(ld, []string{fixtures + "/vfsdiscipline/rdbms/vfs"}, registry)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("vfs package must be exempt, got: %s", f)
	}
}

func TestDurErrCheckGolden(t *testing.T) {
	checkFixture(t, fixtures+"/durerrcheck")
}

func TestLockHygieneGolden(t *testing.T) {
	checkFixture(t, fixtures+"/lockhygiene")
}

func TestDeterminismGolden(t *testing.T) {
	checkFixture(t, fixtures+"/determinism/mlcore")
}

// TestDeterminismStreamZone pins the stream zone added for the adaptive
// ingestion controller: wall clocks and global rand are banned there
// too, the injected-clock and seeded-jitter patterns pass, and the
// scilint:ignore idiom used for the production-default clock suppresses
// its finding.
func TestDeterminismStreamZone(t *testing.T) {
	checkFixture(t, fixtures+"/determinism/stream")
}

func TestHTTPBodyGolden(t *testing.T) {
	checkFixture(t, fixtures+"/httpbody/api")
}

// TestRepoIsLintClean is the self-clean gate: the full suite over the
// whole repository must report nothing. CI also runs this as a separate
// `go run ./internal/tools/scilint ./...` step; the test keeps `go test
// ./...` self-contained.
func TestRepoIsLintClean(t *testing.T) {
	ld, root := sharedLoader(t)
	dirs, err := expandPatterns([]string{root + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("expected to discover the whole repo, got %d package dirs", len(dirs))
	}
	findings, err := runAnalyzers(ld, dirs, registry)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
	for _, w := range ld.Warnings {
		t.Errorf("loader warning (incomplete type info weakens every analyzer): %s", w)
	}
}

// TestSuppression covers the //scilint:ignore machinery directly:
// same-line and line-above placement, rule lists, and the malformed
// (reason-less) form being reported as a finding of its own.
func TestSuppression(t *testing.T) {
	src := `package p

func f() {
	g() //scilint:ignore mockrule proven harmless in TestSuppression
	//scilint:ignore mockrule,otherrule covers the next line
	g()
	//scilint:ignore mockrule
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ignores, malformed := collectIgnores("", fset, []*ast.File{file})
	if len(malformed) != 1 || !strings.Contains(malformed[0].Msg, "malformed suppression") {
		t.Fatalf("want exactly one malformed-suppression finding, got %v", malformed)
	}
	cases := []struct {
		line int
		rule string
		want bool
	}{
		{4, "mockrule", true},   // same line
		{6, "mockrule", true},   // line above
		{6, "otherrule", true},  // second rule of a list
		{6, "mockrule2", false}, // unlisted rule
		{8, "mockrule", false},  // malformed directive suppresses nothing
	}
	for _, c := range cases {
		got := ignores.suppresses(Finding{File: "p.go", Line: c.line, Rule: c.rule})
		if got != c.want {
			t.Errorf("line %d rule %s: suppressed=%v, want %v", c.line, c.rule, got, c.want)
		}
	}
}
