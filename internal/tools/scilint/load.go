package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// loader parses and type-checks packages. Module-internal import paths
// resolve against the repository tree (so packages under testdata/ —
// which the go tool refuses to build — still load for the golden tests);
// everything else goes through the stdlib source importer. All packages
// share one FileSet and one cache, so repeated loads are free.
type loader struct {
	fset    *token.FileSet
	root    string // absolute repository root
	module  string // module path from go.mod
	std     types.ImporterFrom
	pkgs    map[string]*pkgInfo
	loading map[string]bool

	// Warnings collects non-fatal type-check diagnostics. The repo must
	// compile (tier-1 gate) so these indicate a loader limitation, not a
	// code problem; analyzers run on whatever type info exists.
	Warnings []string
}

type pkgInfo struct {
	importPath string
	dir        string
	files      []*ast.File
	pkg        *types.Package
	info       *types.Info
}

func newLoader(root, module string) *loader {
	// The source importer type-checks stdlib packages from GOROOT source.
	// With cgo enabled it would hit preprocessed cgo files in net/os/user;
	// disabling it selects the pure-Go fallbacks, which is all the type
	// information the analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		root:    root,
		module:  module,
		pkgs:    map[string]*pkgInfo{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// Load parses and type-checks the package in dir (relative to the repo
// root or absolute). Test files are excluded: the invariants govern
// production code, and tests legitimately use os, wall clocks and
// unchecked Closes.
func (l *loader) Load(dir string) (*pkgInfo, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.root, dir)
	}
	ip := l.dirToImportPath(abs)
	if pi, ok := l.pkgs[ip]; ok {
		return pi, nil
	}
	if l.loading[ip] {
		return nil, fmt.Errorf("import cycle through %s", ip)
	}
	l.loading[ip] = true
	defer delete(l.loading, ip)

	names, err := goSources(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			l.Warnings = append(l.Warnings, err.Error())
		},
	}
	pkg, _ := conf.Check(ip, l.fset, files, info)
	pi := &pkgInfo{importPath: ip, dir: abs, files: files, pkg: pkg, info: info}
	l.pkgs[ip] = pi
	return pi, nil
}

// Import and ImportFrom make the loader a types.Importer for its own
// type-checks: module paths load locally, the rest from GOROOT source.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pi, err := l.Load(l.importPathToDir(path))
		if err != nil {
			return nil, err
		}
		return pi.pkg, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *loader) dirToImportPath(abs string) string {
	rel, err := filepath.Rel(l.root, abs)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

func (l *loader) importPathToDir(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// goSources lists the non-test .go files of dir in deterministic order.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// expandPatterns resolves "dir/..." walk patterns and plain directories
// into the sorted list of package directories to analyze. Like the go
// tool, the walk skips testdata, vendor and dot/underscore directories —
// that is what keeps the deliberately-violating golden fixtures out of
// the repo's own run.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		base, recursive := strings.CutSuffix(pat, "...")
		if !recursive {
			ok, err := hasGoSources(pat)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%s: no non-test Go files", pat)
			}
			add(pat)
			continue
		}
		base = strings.TrimSuffix(base, "/")
		if base == "" {
			base = "."
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			ok, err := hasGoSources(path)
			if err != nil {
				return err
			}
			if ok {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoSources(dir string) (bool, error) {
	names, err := goSources(dir)
	if err != nil {
		return false, err
	}
	return len(names) > 0, nil
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("%s: no module directive", gomod)
	}
	return string(m[1]), nil
}
