package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockHygiene guards the PR 4 stripe-locking discipline. Two rules:
//
//  1. Unlock on every path: a sync Lock()/RLock() whose unlock is not
//     deferred must be matched by an explicit unlock on every return
//     path that follows it. The check is a straight-line approximation:
//     for each return after the lock, some preceding statement on the
//     chain of enclosing blocks must unlock the same mutex. Two idioms
//     are deliberately exempt — a function whose first operation on a
//     mutex is an Unlock (it was called with the lock held, like the
//     WAL's syncPending) and a function that never unlocks at all (a
//     paired lock helper whose unlock lives in a sibling function).
//
//  2. No by-value signatures: a receiver, parameter or result whose type
//     transitively bears a sync primitive must be a pointer. go vet's
//     copylocks flags call sites; an exported function is a landmine
//     even before anyone in-repo calls it, so the declaration itself is
//     flagged here.
type lockHygiene struct{}

func (lockHygiene) Name() string { return "lockhygiene" }

func (lockHygiene) Doc() string {
	return "locks released on every return path; no mutex-bearing values in signatures"
}

func (l lockHygiene) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				l.checkSignature(p, fn)
				if fn.Body != nil {
					l.checkPaths(p, fn.Body)
				}
			case *ast.FuncLit:
				l.checkPaths(p, fn.Body)
			}
			return true
		})
	}
}

// --- rule 1: unlock on every return path ---

type lockOp struct {
	pos  token.Pos
	stmt ast.Stmt // the ExprStmt carrying the call
	lock bool     // Lock/RLock vs Unlock/RUnlock
}

func (l lockHygiene) checkPaths(p *Pass, body *ast.BlockStmt) {
	ops := map[string][]lockOp{} // mutex key → ops in source order
	deferred := map[string]bool{}
	var returns []*ast.ReturnStmt

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own function
		case *ast.DeferStmt:
			if key, name, ok := syncMethod(p, x.Call); ok && isUnlockName(name) {
				deferred[key] = true
			}
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if key, name, ok := syncMethod(p, call); ok && isUnlockName(name) {
							deferred[key] = true
						}
					}
					return true
				})
			}
			return false
		case *ast.ReturnStmt:
			returns = append(returns, x)
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok {
				if key, name, ok := syncMethod(p, call); ok {
					ops[key] = append(ops[key], lockOp{pos: x.Pos(), stmt: x, lock: isLockName(name)})
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for key, seq := range ops {
		if deferred[key] {
			continue
		}
		var locks []lockOp
		unlockCount := 0
		for _, op := range seq {
			if op.lock {
				locks = append(locks, op)
			} else {
				unlockCount++
			}
		}
		if len(locks) == 0 || unlockCount == 0 {
			continue // never locked here, or a paired lock helper
		}
		if !seq[0].lock {
			continue // first op is an unlock: called with the lock held
		}
		for i, lk := range locks {
			next := token.Pos(1 << 30)
			if i+1 < len(locks) {
				next = locks[i+1].pos
			}
			for _, ret := range returns {
				if ret.Pos() <= lk.pos || ret.Pos() >= next {
					continue
				}
				doms := straightLineDoms(body, ret)
				// The lock must itself dominate the return: a lock both
				// taken and released inside an earlier loop body or a
				// conditional that exits is not held when this return runs.
				onPath := false
				for _, s := range doms {
					if s == lk.stmt {
						onPath = true
						break
					}
				}
				if !onPath {
					continue
				}
				if !unlockIn(p, doms, key, lk.pos) {
					p.Reportf(ret.Pos(), l.Name(),
						"return with %s held (locked at line %d): defer the unlock or unlock on this path",
						keyDisplay(key), p.Fset.Position(lk.pos).Line)
				}
			}
		}
	}
}

// straightLineDoms collects the statements that lexically dominate ret:
// its preceding siblings in its own block, and the preceding siblings of
// each enclosing statement. An unlock buried in an earlier conditional
// branch is not in the chain — that branch either returned (its own path
// was checked) or rejoined still holding the lock.
func straightLineDoms(body *ast.BlockStmt, ret *ast.ReturnStmt) []ast.Stmt {
	var doms []ast.Stmt
	contains := func(n ast.Node) bool {
		return n != nil && ret.Pos() >= n.Pos() && ret.End() <= n.End()
	}
	var visitStmt func(s ast.Stmt)
	visitList := func(list []ast.Stmt) {
		for _, s := range list {
			if contains(s) {
				if s != ast.Stmt(ret) {
					visitStmt(s)
				}
				return
			}
			doms = append(doms, s)
		}
	}
	visitStmt = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.BlockStmt:
			visitList(x.List)
		case *ast.IfStmt:
			if contains(x.Body) {
				visitList(x.Body.List)
			} else if x.Else != nil && contains(x.Else) {
				visitStmt(x.Else)
			}
		case *ast.ForStmt:
			if contains(x.Body) {
				visitList(x.Body.List)
			}
		case *ast.RangeStmt:
			if contains(x.Body) {
				visitList(x.Body.List)
			}
		case *ast.SwitchStmt:
			visitClauses(x.Body, contains, visitList)
		case *ast.TypeSwitchStmt:
			visitClauses(x.Body, contains, visitList)
		case *ast.SelectStmt:
			visitClauses(x.Body, contains, visitList)
		case *ast.LabeledStmt:
			visitStmt(x.Stmt)
		}
	}
	visitList(body.List)
	return doms
}

// unlockIn reports whether the dominator chain unlocks key after lockPos.
func unlockIn(p *Pass, doms []ast.Stmt, key string, lockPos token.Pos) bool {
	for _, s := range doms {
		if s.Pos() <= lockPos {
			continue
		}
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if k, name, ok := syncMethod(p, call); ok && k == key && isUnlockName(name) {
			return true
		}
	}
	return false
}

func visitClauses(body *ast.BlockStmt, contains func(ast.Node) bool, visitList func([]ast.Stmt)) {
	for _, clause := range body.List {
		if !contains(clause) {
			continue
		}
		switch c := clause.(type) {
		case *ast.CaseClause:
			visitList(c.Body)
		case *ast.CommClause:
			visitList(c.Body)
		}
		return
	}
}

// syncMethod matches a call to a sync package lock method (Lock, RLock,
// Unlock, RUnlock — on Mutex, RWMutex or Locker) and returns a key that
// identifies the mutex expression plus the read/write flavor, so an
// RLock is never satisfied by a Unlock.
func syncMethod(p *Pass, call *ast.CallExpr) (key, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	name = fn.Name()
	switch name {
	case "Lock", "Unlock":
		return types.ExprString(sel.X) + ":w", name, true
	case "RLock", "RUnlock":
		return types.ExprString(sel.X) + ":r", name, true
	}
	return "", "", false
}

func isLockName(name string) bool   { return name == "Lock" || name == "RLock" }
func isUnlockName(name string) bool { return name == "Unlock" || name == "RUnlock" }

// keyDisplay renders a mutex key back as source-ish text.
func keyDisplay(key string) string {
	if len(key) > 2 && key[len(key)-2] == ':' {
		expr := key[:len(key)-2]
		if key[len(key)-1] == 'r' {
			return expr + " (read lock)"
		}
		return expr
	}
	return key
}

// --- rule 2: mutex-bearing values in signatures ---

func (l lockHygiene) checkSignature(p *Pass, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if _, isEllipsis := field.Type.(*ast.Ellipsis); isEllipsis {
				continue
			}
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if bearsLock(t, map[types.Type]bool{}) {
				p.Reportf(field.Pos(), l.Name(),
					"%s of %s copies mutex-bearing %s by value: use a pointer (go vet only flags call sites)",
					kind, fd.Name.Name, types.TypeString(t, types.RelativeTo(p.Pkg)))
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// bearsLock reports whether t, copied by value, would copy a sync
// primitive: it is (or contains, through struct fields and arrays) a
// sync.Mutex, RWMutex, Once, WaitGroup, Cond, Pool or Map.
func bearsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Pool", "Map":
				return true
			}
		}
		return bearsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if bearsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return bearsLock(u.Elem(), seen)
	}
	return false
}
