package main

import (
	"go/ast"
	"go/types"
)

// durErrCheck flags durability-critical calls whose error result is
// discarded. A dropped WAL append, fsync, rename or write-path Close is
// an acknowledged write that may not exist after a crash — PR 5's
// group-commit and PR 6's degraded-mode machinery both exist because
// these errors MUST propagate. A discarded call is one used as a bare
// statement, in a go statement, or (for non-Close methods) a defer;
// assigning to _ is visible in review and counts as an explicit decision,
// as does a //scilint:ignore with a reason.
//
// The critical set: methods of the vfs layer (Sync, SyncDir, Rename,
// Close), os.File Sync/Close (inside the vfs implementation itself),
// WAL append/Sync/Flush/Close, DB Checkpoint/Snapshot/Restore/Close and
// Platform Checkpoint/Close. A *deferred* Close is exempt — that is the
// read-path cleanup idiom; write paths Close inline before renaming.
type durErrCheck struct{}

func (durErrCheck) Name() string { return "durerrcheck" }

func (durErrCheck) Doc() string {
	return "errors from WAL/fsync/rename/checkpoint/write-path-Close calls must be checked"
}

var (
	vfsCritical      = map[string]bool{"Sync": true, "SyncDir": true, "Rename": true, "Close": true}
	osFileCritical   = map[string]bool{"Sync": true, "Close": true}
	walCritical      = map[string]bool{"append": true, "Append": true, "Sync": true, "Flush": true, "Close": true}
	dbCritical       = map[string]bool{"Checkpoint": true, "Snapshot": true, "Restore": true, "Close": true}
	platformCritical = map[string]bool{"Checkpoint": true, "Close": true}
)

func (d durErrCheck) Run(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			deferred := false
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, deferred = s.Call, true
			case *ast.GoStmt:
				call = s.Call
			}
			if call == nil {
				return true
			}
			if why := critical(p, call, deferred); why != "" {
				p.Reportf(call.Pos(), d.Name(),
					"discarded error from %s: %s — check it, assign to _, or //scilint:ignore with a reason",
					types.ExprString(call.Fun), why)
			}
			return true
		})
	}
}

// critical classifies a result-discarding call; it returns a non-empty
// reason when the call is durability-critical and returns an error.
func critical(p *Pass, call *ast.CallExpr, deferred bool) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return ""
	}
	name := fn.Name()
	if deferred && name == "Close" {
		return "" // deferred Close is the read-path cleanup idiom
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	if pathHasSegment(pkgPath, "vfs") && vfsCritical[name] {
		return "a vfs durability call"
	}
	if pkgPath == "os" && recvTypeName(sig) == "File" && osFileCritical[name] {
		return "an os.File durability call"
	}
	switch recvTypeName(sig) {
	case "WAL":
		if walCritical[name] {
			return "a write-ahead-log call"
		}
	case "DB":
		if dbCritical[name] {
			return "a storage-engine durability call"
		}
	case "Platform":
		if platformCritical[name] {
			return "a platform durability call"
		}
	}
	return ""
}

// recvTypeName names the method's receiver type, pointers stripped.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

var errorType = types.Universe.Lookup("error").Type()

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}
