package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// vfsDiscipline enforces the PR 6 storage contract: every filesystem
// touch inside internal/rdbms goes through the vfs.FS injected via
// Options.FS. One direct os.Rename in the checkpoint path silently
// escapes fault injection, Mem's power-cut semantics and the crash
// matrix — exactly the hole this rule closes. The vfs package itself is
// the one place allowed to call the OS.
type vfsDiscipline struct{}

func (vfsDiscipline) Name() string { return "vfsdiscipline" }

func (vfsDiscipline) Doc() string {
	return "internal/rdbms must do file I/O through vfs.FS, never package os or io/ioutil"
}

// osFSRefs are the package-os identifiers that touch the filesystem (or
// mint handles that do). Non-filesystem os uses — error predicates like
// os.IsNotExist, os.Getenv — stay legal.
var osFSRefs = map[string]bool{
	"Chdir": true, "Chmod": true, "Chown": true, "Chtimes": true,
	"Create": true, "CreateTemp": true, "DirFS": true, "Getwd": true,
	"Lchown": true, "Link": true, "Lstat": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "NewFile": true, "Open": true,
	"OpenFile": true, "OpenRoot": true, "Pipe": true, "ReadDir": true,
	"ReadFile": true, "Readlink": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Stat": true, "Symlink": true, "TempDir": true,
	"Truncate": true, "WriteFile": true,
}

func (v vfsDiscipline) Run(p *Pass) {
	if !pathHasSegment(p.Path, "rdbms") || pathHasSegment(p.Path, "vfs") {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "io/ioutil" {
				p.Reportf(imp.Pos(), v.Name(),
					"io/ioutil import in rdbms: route file I/O through vfs.FS (Options.FS) so fault injection and crash tests cover it")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "os" {
				return true
			}
			if osFSRefs[sel.Sel.Name] {
				p.Reportf(sel.Pos(), v.Name(),
					"direct os.%s in rdbms: route it through vfs.FS (Options.FS) so fault injection and crash tests cover it", sel.Sel.Name)
			}
			return true
		})
	}
}
