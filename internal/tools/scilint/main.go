// Command scilint is the repository's codebase-invariant static-analysis
// suite. It enforces conventions the compiler cannot: every byte of rdbms
// I/O routes through internal/rdbms/vfs, durability-critical error values
// are never dropped, stripe locks are released on every return path,
// recovery/replay and model-scoring code stays deterministic, and every
// HTTP handler bounds the request body it decodes. The invariants and the
// PRs that motivated them are documented in docs/DEVELOPMENT.md.
//
// Run from the repository root:
//
//	go run ./internal/tools/scilint ./...
//
// Output is one finding per line in "file:line: [rule] message" form
// (or a JSON array with -json); the exit status is 1 when any
// unsuppressed finding exists, 2 on a driver error, 0 when clean.
//
// A finding is suppressed by a comment on the same line or the line
// directly above it:
//
//	//scilint:ignore <rule>[,<rule>] <reason>
//
// The reason is mandatory — a suppression without one is itself reported.
// The analyzer suite is pluggable: see the Analyzer interface in
// driver.go and the registry below.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// registry is the full analyzer suite, in reporting-name order.
var registry = []Analyzer{
	determinism{},
	durErrCheck{},
	httpBody{},
	lockHygiene{},
	vfsDiscipline{},
}

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		rules   = flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
		list    = flag.Bool("list", false, "list the registered analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range registry {
			fmt.Printf("%-15s %s\n", a.Name(), a.Doc())
		}
		return
	}

	selected, err := selectAnalyzers(*rules)
	if err != nil {
		fatal(err)
	}

	module, err := moduleName("go.mod")
	if err != nil {
		fatal(fmt.Errorf("%v (scilint must run from the repository root)", err))
	}
	root, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fatal(err)
	}

	ld := newLoader(root, module)
	findings, err := runAnalyzers(ld, dirs, selected)
	if err != nil {
		fatal(err)
	}
	for _, w := range ld.Warnings {
		fmt.Fprintln(os.Stderr, "scilint: warning:", w)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if len(findings) == 0 {
			fmt.Printf("scilint: %d packages clean (%d analyzers)\n", len(dirs), len(selected))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(rules string) ([]Analyzer, error) {
	if rules == "" {
		return registry, nil
	}
	byName := map[string]Analyzer{}
	for _, a := range registry {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scilint:", err)
	os.Exit(2)
}
