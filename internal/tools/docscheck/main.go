// Command docscheck is the CI docs-consistency gate. It fails when
//
//  1. an HTTP route registered in internal/api (a `mux.HandleFunc("METHOD
//     /api/...")` call) is not documented in docs/API.md, or
//  2. a relative markdown link in docs/ (or a root markdown file) points
//     at a file that does not exist, or
//  3. a command-line flag registered by cmd/scilens-server or
//     cmd/scilens-ingest is missing from the docs/OPERATIONS.md flag
//     tables, or
//  4. a metric family registered through the obs constructors anywhere
//     under internal/ is missing from docs/OBSERVABILITY.md.
//
// Run from the repository root:
//
//	go run ./internal/tools/docscheck
//
// The tool is deliberately dumb — a regexp over the registration strings
// and the link targets — so it cannot drift from the code the way a
// hand-maintained route list would.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// routeRe matches mux registrations like:
//
//	s.mux.HandleFunc("GET /api/assess", ...)
var routeRe = regexp.MustCompile(`HandleFunc\("(GET|POST|PUT|DELETE|PATCH) (/api/[^"]*)"`)

// linkRe matches inline markdown links [text](target).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// flagRe matches stdlib flag registrations like flag.String("addr", ...).
var flagRe = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\("([^"]+)"`)

// metricRe matches obs metric-family registrations like
// obs.NewCounter("scilens_..._total", ...) — on the package helpers or a
// Registry receiver.
var metricRe = regexp.MustCompile(`\bNew(?:CounterVec|Counter|GaugeVec|GaugeFunc|Gauge|DurationHistogramVec|DurationHistogram|SizeHistogramVec|SizeHistogram)\("([a-z0-9_]+)"`)

func main() {
	var problems []string

	routes, err := collectRoutes("internal/api")
	if err != nil {
		fatal(err)
	}
	if len(routes) == 0 {
		fatal(fmt.Errorf("no /api routes found under internal/api — is docscheck running from the repo root?"))
	}
	apiDoc, err := os.ReadFile(filepath.Join("docs", "API.md"))
	if err != nil {
		fatal(fmt.Errorf("docs/API.md: %w", err))
	}
	for _, route := range routes {
		if !strings.Contains(string(apiDoc), route) {
			problems = append(problems, fmt.Sprintf("route %q registered in internal/api but absent from docs/API.md", route))
		}
	}

	flags, err := collectFlags("cmd/scilens-server", "cmd/scilens-ingest")
	if err != nil {
		fatal(err)
	}
	if len(flags) == 0 {
		fatal(fmt.Errorf("no flag registrations found under cmd/ — is docscheck running from the repo root?"))
	}
	opsDoc, err := os.ReadFile(filepath.Join("docs", "OPERATIONS.md"))
	if err != nil {
		fatal(fmt.Errorf("docs/OPERATIONS.md: %w", err))
	}
	for _, f := range flags {
		// Flags appear in the OPERATIONS.md tables as backticked `-name`.
		if !strings.Contains(string(opsDoc), "`-"+f+"`") {
			problems = append(problems, fmt.Sprintf("flag -%s registered under cmd/ but absent from the docs/OPERATIONS.md flag tables", f))
		}
	}

	metrics, err := collectMetrics("internal")
	if err != nil {
		fatal(err)
	}
	if len(metrics) == 0 {
		fatal(fmt.Errorf("no metric registrations found under internal/ — is docscheck running from the repo root?"))
	}
	obsDoc, err := os.ReadFile(filepath.Join("docs", "OBSERVABILITY.md"))
	if err != nil {
		fatal(fmt.Errorf("docs/OBSERVABILITY.md: %w", err))
	}
	for _, m := range metrics {
		// Metric families appear in OBSERVABILITY.md backticked.
		if !strings.Contains(string(obsDoc), "`"+m+"`") {
			problems = append(problems, fmt.Sprintf("metric %s registered under internal/ but absent from docs/OBSERVABILITY.md", m))
		}
	}

	mds, err := markdownFiles()
	if err != nil {
		fatal(err)
	}
	for _, md := range mds {
		broken, err := checkLinks(md)
		if err != nil {
			fatal(err)
		}
		problems = append(problems, broken...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d routes documented, %d flags documented, %d metrics documented, %d markdown files link-checked\n", len(routes), len(flags), len(metrics), len(mds))
}

// collectRoutes scans the package's Go sources for route registrations.
func collectRoutes(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, m := range routeRe.FindAllStringSubmatch(string(src), -1) {
			set[m[1]+" "+m[2]] = true
		}
	}
	routes := make([]string, 0, len(set))
	for r := range set {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	return routes, nil
}

// collectFlags scans each command directory's Go sources for stdlib flag
// registrations and returns the sorted union of flag names.
func collectFlags(dirs ...string) ([]string, error) {
	set := map[string]bool{}
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return nil, err
			}
			for _, m := range flagRe.FindAllStringSubmatch(string(src), -1) {
				set[m[1]] = true
			}
		}
	}
	flags := make([]string, 0, len(set))
	for f := range set {
		flags = append(flags, f)
	}
	sort.Strings(flags)
	return flags, nil
}

// collectMetrics walks the internal tree for obs metric registrations,
// skipping tests (throwaway registries) and internal/tools (fixtures).
func collectMetrics(root string) ([]string, error) {
	set := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path == filepath.Join(root, "tools") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range metricRe.FindAllStringSubmatch(string(src), -1) {
			set[m[1]] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	metrics := make([]string, 0, len(set))
	for m := range set {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	return metrics, nil
}

// markdownFiles lists docs/*.md plus the root-level markdown files.
func markdownFiles() ([]string, error) {
	files, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		return nil, err
	}
	root, err := filepath.Glob("*.md")
	if err != nil {
		return nil, err
	}
	return append(files, root...), nil
}

// checkLinks verifies every relative link target in one markdown file
// resolves to an existing file or directory. External links (scheme://),
// pure anchors (#...) and mailto: are skipped; a #fragment on a relative
// target is stripped before the existence check.
func checkLinks(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), target)
		if _, err := os.Stat(resolved); err != nil {
			broken = append(broken, fmt.Sprintf("%s: broken link %q (resolved %s)", path, m[1], resolved))
		}
	}
	return broken, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "docscheck:", err)
	os.Exit(1)
}
