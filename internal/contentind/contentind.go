// Package contentind computes the content-based quality indicators of
// paper §3.1: the clickbait-ness of the title, the subjectivity and
// readability of the body, and whether the article is by-lined by its
// author.
//
// The clickbait score blends a trained logistic-regression model (when one
// is registered) with lexicon evidence; the subjectivity score follows the
// OpinionFinder convention (strong clues count double). All scores are
// normalised to [0, 1] where higher means lower journalistic quality for
// clickbait/subjectivity, so the UI can colour-code them uniformly.
package contentind

import (
	"math"
	"sync/atomic"

	"repro/internal/classify"
	"repro/internal/extract"
	"repro/internal/lexicon"
	"repro/internal/mlcore"
	"repro/internal/readability"
	"repro/internal/textutil"
)

// Indicators bundles the content indicators for one article.
type Indicators struct {
	// Clickbait is the clickbait-ness of the title in [0, 1].
	Clickbait float64
	// Subjectivity is the subjectivity of the body in [0, 1].
	Subjectivity float64
	// Readability carries the full readability score bundle for the body.
	Readability readability.Scores
	// ReadingGrade is the consensus (median) grade level.
	ReadingGrade float64
	// HasByline reports whether an author attribution was found.
	HasByline bool
}

// Analyzer computes content indicators. The zero value works with
// lexicon-only scoring; attach a trained model with SetClickbaitModel.
// The model pointer is atomic so periodic retraining can swap models
// under live concurrent scoring.
type Analyzer struct {
	model    atomic.Pointer[classify.LogReg]
	features *FeatureExtractor
}

// NewAnalyzer returns a lexicon-only analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{features: NewFeatureExtractor()}
}

// ClickbaitModel returns the attached clickbait model, or nil when the
// analyzer is lexicon-only.
func (a *Analyzer) ClickbaitModel() *classify.LogReg { return a.model.Load() }

// SetClickbaitModel attaches a trained clickbait classifier whose features
// come from the analyzer's FeatureExtractor.
func (a *Analyzer) SetClickbaitModel(m *classify.LogReg) { a.model.Store(m) }

// Features returns the analyzer's title feature extractor (for training).
func (a *Analyzer) Features() *FeatureExtractor { return a.features }

// Analyze computes all content indicators for an article.
func (a *Analyzer) Analyze(art *extract.Article) Indicators {
	ind := Indicators{
		Clickbait:    a.ClickbaitScore(art.Title),
		Subjectivity: SubjectivityScore(art.Body),
		Readability:  readability.Score(art.Body),
		HasByline:    art.HasByline(),
	}
	ind.ReadingGrade = readability.GradeConsensus(ind.Readability)
	return ind
}

// AnalyzeDoc computes the content indicators from shared single-pass
// analyses of the title and body — equivalent to Analyze but without
// re-tokenising or re-stemming either text.
func (a *Analyzer) AnalyzeDoc(art *extract.Article, title, body *textutil.Analysis) Indicators {
	ind := Indicators{
		Clickbait:    a.ClickbaitScoreDoc(title),
		Subjectivity: SubjectivityScoreDoc(body),
		Readability:  readability.ScoreDoc(body),
		HasByline:    art.HasByline(),
	}
	ind.ReadingGrade = readability.GradeConsensus(ind.Readability)
	return ind
}

// ClickbaitScoreDoc is ClickbaitScore over a shared title analysis.
func (a *Analyzer) ClickbaitScoreDoc(title *textutil.Analysis) float64 {
	lex := LexiconClickbaitScoreDoc(title)
	m := a.model.Load()
	if m == nil {
		return lex
	}
	p := m.Prob(a.features.ExtractDoc(title))
	return (p + lex) / 2
}

// ClickbaitScore scores a headline in [0, 1]. With a model attached the
// score is the mean of the model probability and the lexicon score;
// otherwise the lexicon score alone.
func (a *Analyzer) ClickbaitScore(title string) float64 {
	lex := LexiconClickbaitScore(title)
	m := a.model.Load()
	if m == nil {
		return lex
	}
	p := m.Prob(a.features.Extract(title))
	return (p + lex) / 2
}

// LexiconClickbaitScore is the deterministic lexicon-only clickbait score,
// a logistic squash of weighted cue counts.
func LexiconClickbaitScore(title string) float64 {
	if title == "" {
		return 0
	}
	toks := textutil.Tokenize(title)
	words := 0
	cueWords := 0
	exclaims := 0
	questions := 0
	numbers := 0
	for _, t := range toks {
		switch t.Kind {
		case textutil.KindWord:
			words++
			if lexicon.IsClickbaitWord(t.Text) {
				cueWords++
			}
		case textutil.KindNumber:
			numbers++
		case textutil.KindPunct:
			if t.Text[0] == '!' {
				exclaims += len(t.Text)
			}
			if t.Text[0] == '?' {
				questions += len(t.Text)
			}
		}
	}
	phrases := lexicon.ClickbaitPhraseHits(title)
	forwards := lexicon.ForwardReferenceHits(title)
	allCaps := textutil.AllCapsWordCount(title)
	return squashClickbait(phrases, forwards, cueWords, exclaims, questions, numbers, words, allCaps)
}

// LexiconClickbaitScoreDoc is LexiconClickbaitScore over a shared title
// analysis (one tokenisation, one lower-casing, stems reused).
func LexiconClickbaitScoreDoc(a *textutil.Analysis) float64 {
	if a.Text == "" {
		return 0
	}
	words := 0
	cueWords := 0
	exclaims := 0
	questions := 0
	numbers := 0
	wi := 0
	for i := range a.Tokens {
		t := &a.Tokens[i]
		switch t.Kind {
		case textutil.KindWord:
			words++
			if lexicon.IsClickbaitStem(a.Words[wi].Stem) {
				cueWords++
			}
			wi++
		case textutil.KindNumber:
			numbers++
		case textutil.KindPunct:
			if t.Text[0] == '!' {
				exclaims += len(t.Text)
			}
			if t.Text[0] == '?' {
				questions += len(t.Text)
			}
		}
	}
	h := a.LowerText()
	phrases := lexicon.ClickbaitPhraseHitsLower(h)
	forwards := lexicon.ForwardReferenceHitsLower(h)
	return squashClickbait(phrases, forwards, cueWords, exclaims, questions, numbers, words, a.AllCapsWords)
}

// squashClickbait blends the cue counts into the final [0, 1] score.
func squashClickbait(phrases, forwards, cueWords, exclaims, questions, numbers, words, allCaps int) float64 {
	score := 1.8*float64(phrases) +
		1.2*float64(forwards) +
		0.9*float64(cueWords) +
		0.6*float64(exclaims) +
		0.3*float64(questions) +
		0.5*float64(allCaps)
	if numbers > 0 && words > 0 && (phrases > 0 || cueWords > 0) {
		// Listicle-style "7 tricks..." headline.
		score += 0.4
	}
	// Squash: zero evidence → 0, one strong phrase ≈ 0.72, several cues → 1.
	return 1 - math.Exp(-score*0.7)
}

// SubjectivityScore scores body text in [0, 1] using the subjectivity
// lexicon: strong clues weigh 2, weak clues 1, boosters 0.5, normalised by
// word count against an empirical ceiling.
func SubjectivityScore(body string) float64 {
	words := textutil.Words(body)
	if len(words) == 0 {
		return 0
	}
	weighted := 0.0
	for _, w := range words {
		if e, ok := lexicon.LookupSubjectivity(w); ok {
			if e.Strong {
				weighted += 2
			} else {
				weighted += 1
			}
			continue
		}
		if lexicon.IsBooster(w) {
			weighted += 0.5
		}
	}
	// Density of weighted clues per word; 0.12 (≈ one strong clue every
	// 17 words) is treated as fully subjective.
	density := weighted / float64(len(words))
	score := density / 0.12
	if score > 1 {
		score = 1
	}
	return score
}

// SubjectivityScoreDoc is SubjectivityScore over a shared body analysis:
// the lexicon is probed with the precomputed stems, so no word is stemmed
// (or stemmed twice for the booster fallback) per call.
func SubjectivityScoreDoc(a *textutil.Analysis) float64 {
	n := len(a.Words)
	if n == 0 {
		return 0
	}
	weighted := 0.0
	for i := range a.Words {
		stem := a.Words[i].Stem
		if e, ok := lexicon.SubjectivityByStem(stem); ok {
			if e.Strong {
				weighted += 2
			} else {
				weighted += 1
			}
			continue
		}
		if lexicon.IsBoosterStem(stem) {
			weighted += 0.5
		}
	}
	density := weighted / float64(n)
	score := density / 0.12
	if score > 1 {
		score = 1
	}
	return score
}

// HedgeDensity returns hedge words per word of body text — an auxiliary
// indicator used by the evidence analyses.
func HedgeDensity(body string) float64 {
	words := textutil.Words(body)
	if len(words) == 0 {
		return 0
	}
	n := 0
	for _, w := range words {
		if lexicon.IsHedge(w) {
			n++
		}
	}
	return float64(n) / float64(len(words))
}

// FeatureExtractor maps headlines to sparse feature vectors for the
// clickbait classifier. The feature space is fixed-dimension: hashed word
// unigrams/bigrams plus a dense block of stylometric features.
type FeatureExtractor struct {
	// HashDim is the dimensionality of the hashed-text block.
	HashDim int
}

// Stylometric feature slots (appended after the hashed block).
const (
	featWordCount = iota
	featAvgWordLen
	featExclaims
	featQuestions
	featAllCaps
	featCapRatio
	featNumbers
	featPhraseHits
	featForwardRefs
	featCueWords
	numStyleFeatures
)

// NewFeatureExtractor returns an extractor with the default 2^12 hashed
// dimensions.
func NewFeatureExtractor() *FeatureExtractor { return &FeatureExtractor{HashDim: 1 << 12} }

// Dim returns the total feature dimensionality.
func (f *FeatureExtractor) Dim() int { return f.HashDim + numStyleFeatures }

// Extract builds the feature vector for a headline.
func (f *FeatureExtractor) Extract(title string) mlcore.SparseVector {
	words := textutil.Words(title)
	terms := append([]string{}, words...)
	terms = append(terms, textutil.Bigrams(words)...)
	v := mlcore.HashFeatures(terms, f.HashDim)

	toks := textutil.Tokenize(title)
	exclaims, questions, numbers := 0, 0, 0
	wordLen := 0
	cueWords := 0
	for _, t := range toks {
		switch t.Kind {
		case textutil.KindWord:
			wordLen += len(t.Text)
			if lexicon.IsClickbaitWord(t.Text) {
				cueWords++
			}
		case textutil.KindNumber:
			numbers++
		case textutil.KindPunct:
			if t.Text[0] == '!' {
				exclaims++
			}
			if t.Text[0] == '?' {
				questions++
			}
		}
	}
	style := f.HashDim
	if n := len(words); n > 0 {
		v[style+featWordCount] = float64(n) / 20
		v[style+featAvgWordLen] = float64(wordLen) / float64(n) / 10
	}
	v[style+featExclaims] = float64(exclaims)
	v[style+featQuestions] = float64(questions)
	v[style+featAllCaps] = float64(textutil.AllCapsWordCount(title))
	v[style+featCapRatio] = textutil.CapitalizedRatio(title)
	v[style+featNumbers] = float64(numbers)
	v[style+featPhraseHits] = float64(lexicon.ClickbaitPhraseHits(title))
	v[style+featForwardRefs] = float64(lexicon.ForwardReferenceHits(title))
	v[style+featCueWords] = float64(cueWords)
	return v
}

// ExtractDoc builds the feature vector from a shared title analysis —
// the same vector Extract produces, reusing the single tokenisation pass.
func (f *FeatureExtractor) ExtractDoc(a *textutil.Analysis) mlcore.SparseVector {
	words := a.WordStrings()
	terms := append([]string{}, words...)
	terms = append(terms, textutil.Bigrams(words)...)
	v := mlcore.HashFeatures(terms, f.HashDim)

	exclaims, questions, numbers := 0, 0, 0
	wordLen := 0
	cueWords := 0
	wi := 0
	for i := range a.Tokens {
		t := &a.Tokens[i]
		switch t.Kind {
		case textutil.KindWord:
			wordLen += len(t.Text)
			if lexicon.IsClickbaitStem(a.Words[wi].Stem) {
				cueWords++
			}
			wi++
		case textutil.KindNumber:
			numbers++
		case textutil.KindPunct:
			if t.Text[0] == '!' {
				exclaims++
			}
			if t.Text[0] == '?' {
				questions++
			}
		}
	}
	style := f.HashDim
	if n := len(words); n > 0 {
		v[style+featWordCount] = float64(n) / 20
		v[style+featAvgWordLen] = float64(wordLen) / float64(n) / 10
	}
	v[style+featExclaims] = float64(exclaims)
	v[style+featQuestions] = float64(questions)
	capRatio := 0.0
	if len(a.Words) > 0 {
		capRatio = float64(a.CapitalizedWords) / float64(len(a.Words))
	}
	v[style+featAllCaps] = float64(a.AllCapsWords)
	v[style+featCapRatio] = capRatio
	v[style+featNumbers] = float64(numbers)
	v[style+featPhraseHits] = float64(lexicon.ClickbaitPhraseHitsLower(a.LowerText()))
	v[style+featForwardRefs] = float64(lexicon.ForwardReferenceHitsLower(a.LowerText()))
	v[style+featCueWords] = float64(cueWords)
	return v
}

// TrainClickbaitModel fits a logistic-regression clickbait classifier from
// labelled headlines using the extractor's feature space.
func TrainClickbaitModel(f *FeatureExtractor, titles []string, labels []bool, seed int64) (*classify.LogReg, error) {
	data := make([]classify.Example, len(titles))
	for i, title := range titles {
		data[i] = classify.Example{X: f.Extract(title), Y: labels[i]}
	}
	return classify.TrainLogReg(data, classify.LogRegConfig{
		Dim:  f.Dim(),
		Seed: seed,
	})
}
