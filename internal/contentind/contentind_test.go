package contentind

import (
	"math/rand"
	"testing"

	"repro/internal/extract"
)

var clickbaitTitles = []string{
	"You Won't Believe What This Doctor Found In Your Food",
	"SHOCKING: This One Weird Trick Cures Everything!!!",
	"Doctors HATE her! The secret they don't want you to know",
	"10 Unbelievable Facts That Will Blow Your Mind",
	"What Happens Next Will Leave You Speechless",
	"The Miracle Cure Big Pharma Is Hiding From You",
	"This Is Why You Should NEVER Eat Bananas Again",
	"Wait Until You See What Scientists Found — INSANE",
}

var seriousTitles = []string{
	"Phase 3 trial reports 62% efficacy for candidate vaccine",
	"WHO issues updated guidance on mask usage in public spaces",
	"Researchers publish genome analysis of novel coronavirus",
	"Hospital admissions decline for third consecutive week",
	"Peer review finds methodological flaws in hydroxychloroquine study",
	"Antibody survey suggests wider spread than confirmed cases indicate",
	"University consortium launches vaccine distribution modelling effort",
	"Clinical data shows modest benefit of early intervention",
}

func TestLexiconClickbaitSeparates(t *testing.T) {
	for _, title := range clickbaitTitles {
		if s := LexiconClickbaitScore(title); s < 0.5 {
			t.Errorf("clickbait %q scored %v", title, s)
		}
	}
	for _, title := range seriousTitles {
		if s := LexiconClickbaitScore(title); s > 0.45 {
			t.Errorf("serious %q scored %v", title, s)
		}
	}
}

func TestLexiconClickbaitBounds(t *testing.T) {
	if s := LexiconClickbaitScore(""); s != 0 {
		t.Errorf("empty: %v", s)
	}
	huge := ""
	for i := 0; i < 50; i++ {
		huge += "SHOCKING unbelievable miracle!!! "
	}
	if s := LexiconClickbaitScore(huge); s > 1 {
		t.Errorf("score above 1: %v", s)
	}
}

func TestSubjectivityScore(t *testing.T) {
	objective := `The trial enrolled 3000 participants across 12 sites.
	Results were published on Thursday. The protocol was registered in 2019.`
	subjective := `This amazing, incredible result is absolutely wonderful
	news. Critics spread terrible, shocking lies but the brilliant authors
	love this fantastic outcome. It is perfect, remarkable and stunning.`
	so := SubjectivityScore(objective)
	ss := SubjectivityScore(subjective)
	if so >= ss {
		t.Errorf("objective %v should score below subjective %v", so, ss)
	}
	if ss < 0.8 {
		t.Errorf("dense subjective text: %v", ss)
	}
	if so > 0.25 {
		t.Errorf("objective text: %v", so)
	}
	if SubjectivityScore("") != 0 {
		t.Error("empty body")
	}
}

func TestHedgeDensity(t *testing.T) {
	hedged := "Results may suggest the treatment could possibly help, researchers estimate."
	flat := "The treatment cured the disease in all patients."
	if HedgeDensity(hedged) <= HedgeDensity(flat) {
		t.Error("hedged text should have higher density")
	}
	if HedgeDensity("") != 0 {
		t.Error("empty")
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	a := NewAnalyzer()
	art := &extract.Article{
		Title:  "You Won't Believe This Miracle Cure!!!",
		Body:   "This amazing and incredible discovery is absolutely wonderful. Shocking critics hate it.",
		Byline: "Jane Doe",
	}
	ind := a.Analyze(art)
	if ind.Clickbait < 0.5 {
		t.Errorf("clickbait: %v", ind.Clickbait)
	}
	if ind.Subjectivity < 0.5 {
		t.Errorf("subjectivity: %v", ind.Subjectivity)
	}
	if !ind.HasByline {
		t.Error("byline")
	}
	if ind.ReadingGrade == 0 {
		t.Error("grade should be non-zero for real text")
	}
}

func TestFeatureExtractorShape(t *testing.T) {
	f := NewFeatureExtractor()
	v := f.Extract("10 SHOCKING Facts You Won't Believe!")
	for idx := range v {
		if idx < 0 || idx >= f.Dim() {
			t.Fatalf("feature index %d out of range %d", idx, f.Dim())
		}
	}
	if v[f.HashDim+featPhraseHits] == 0 {
		t.Error("phrase hits feature not set")
	}
	if v[f.HashDim+featExclaims] == 0 {
		t.Error("exclaim feature not set")
	}
	if v[f.HashDim+featNumbers] == 0 {
		t.Error("number feature not set")
	}
}

func TestTrainedModelImprovesOrMatchesLexicon(t *testing.T) {
	// Build a labelled set from the fixtures plus noise variants.
	rng := rand.New(rand.NewSource(11))
	var titles []string
	var labels []bool
	decorations := []string{"", " today", " - report", " (updated)", " this week"}
	for i := 0; i < 10; i++ {
		for _, title := range clickbaitTitles {
			titles = append(titles, title+decorations[rng.Intn(len(decorations))])
			labels = append(labels, true)
		}
		for _, title := range seriousTitles {
			titles = append(titles, title+decorations[rng.Intn(len(decorations))])
			labels = append(labels, false)
		}
	}
	f := NewFeatureExtractor()
	model, err := TrainClickbaitModel(f, titles, labels, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	a.SetClickbaitModel(model)

	correct := 0
	for i, title := range titles {
		pred := a.ClickbaitScore(title) >= 0.5
		if pred == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(titles))
	if acc < 0.95 {
		t.Errorf("blended accuracy on training distribution: %v", acc)
	}
}

func TestAnalyzerWithoutModelStillWorks(t *testing.T) {
	a := NewAnalyzer()
	if s := a.ClickbaitScore("Plain headline about budget policy"); s > 0.3 {
		t.Errorf("plain headline: %v", s)
	}
}
