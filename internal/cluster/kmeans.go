// Package cluster implements the clustering algorithms behind the SciLens
// content-based segmentation: spherical k-means++ over sparse TF-IDF
// vectors and a probabilistic hierarchical topic clustering that assigns
// each article one or more topics with soft probabilities (paper §3.3).
package cluster

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/mlcore"
)

// ErrNoVectors is returned when the input corpus is empty.
var ErrNoVectors = errors.New("cluster: no input vectors")

// ErrBadK is returned when k is not in [1, len(vectors)].
var ErrBadK = errors.New("cluster: k out of range")

// KMeansResult holds the output of KMeans.
type KMeansResult struct {
	// Assignments maps each input index to its cluster id.
	Assignments []int
	// Centroids are the final cluster centroids (sparse, L2-normalised).
	Centroids []mlcore.SparseVector
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
	// Inertia is the final sum of (1 - cosine) distances to assigned
	// centroids.
	Inertia float64
}

// indexed pairs a sparse vector with its cached sorted index set and norm,
// so the cosine hot loops below pay the deterministic-order sort once per
// vector (or once per centroid per iteration) instead of on every
// similarity.
type indexed struct {
	v    mlcore.SparseVector
	idx  []int
	norm float64
}

func indexVec(v mlcore.SparseVector) indexed {
	idx := v.Indices()
	return indexed{v: v, idx: idx, norm: v.NormAt(idx)}
}

func indexAll(vs []mlcore.SparseVector) []indexed {
	out := make([]indexed, len(vs))
	for i, v := range vs {
		out[i] = indexVec(v)
	}
	return out
}

func cosine(a, b indexed) float64 {
	return mlcore.CosineAt(a.v, a.idx, a.norm, b.v, b.idx, b.norm)
}

// KMeans runs spherical k-means (cosine distance) with k-means++ seeding.
// maxIter <= 0 defaults to 50. The algorithm is deterministic for a given
// seed.
func KMeans(vectors []mlcore.SparseVector, k, maxIter int, seed int64) (*KMeansResult, error) {
	n := len(vectors)
	if n == 0 {
		return nil, ErrNoVectors
	}
	if k < 1 || k > n {
		return nil, ErrBadK
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	rng := rand.New(rand.NewSource(seed))
	points := indexAll(vectors)
	centroids := seedPlusPlus(points, k, rng)

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	result := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		inertia := 0.0
		for i := range points {
			best, bestDist := 0, math.Inf(1)
			for c := range centroids {
				d := 1 - cosine(points[i], centroids[c])
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			inertia += bestDist
		}
		result.Iterations = iter + 1
		result.Inertia = inertia
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids as normalised mean direction.
		sums := make([]mlcore.SparseVector, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(mlcore.SparseVector)
		}
		for i, v := range vectors {
			sums[assign[i]].Add(v, 1)
			counts[assign[i]]++
		}
		for c := range sums {
			if counts[c] == 0 {
				// Re-seed empty cluster with the farthest point.
				far, farDist := 0, -1.0
				for i := range points {
					d := 1 - cosine(points[i], centroids[assign[i]])
					if d > farDist {
						far, farDist = i, d
					}
				}
				sums[c] = vectors[far].Clone()
			}
			sums[c].L2Normalize()
		}
		centroids = indexAll(sums)
	}
	result.Assignments = assign
	result.Centroids = make([]mlcore.SparseVector, k)
	for c := range centroids {
		result.Centroids[c] = centroids[c].v
	}
	return result, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ strategy
// adapted to cosine distance.
func seedPlusPlus(points []indexed, k int, rng *rand.Rand) []indexed {
	n := len(points)
	centroids := make([]indexed, 0, k)
	clone := func(i int) indexed { return indexVec(points[i].v.Clone()) }
	first := rng.Intn(n)
	centroids = append(centroids, clone(first))
	dist := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				cd := 1 - cosine(points[i], c)
				if cd < d {
					d = cd
				}
			}
			dist[i] = d * d
			total += dist[i]
		}
		if total == 0 {
			// All points identical to some centroid: duplicate any point.
			centroids = append(centroids, clone(rng.Intn(n)))
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dist {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		centroids = append(centroids, clone(pick))
	}
	return centroids
}
