package cluster

import (
	"fmt"
	"math"

	"repro/internal/mlcore"
)

// TopicNode is one node of the hierarchical topic tree. The root represents
// "all news"; children refine their parent (e.g. Health → COVID-19), which
// mirrors the generic-to-specific topic hierarchy in paper §3.3.
type TopicNode struct {
	// ID is a stable path-style identifier, e.g. "root/1/0".
	ID string
	// Centroid is the node's L2-normalised centre in TF-IDF space.
	Centroid mlcore.SparseVector
	// Members are indices (into the training corpus) of articles under
	// this node.
	Members []int
	// Children are the refined sub-topics; empty for leaves.
	Children []*TopicNode
	// Depth is 0 for the root.
	Depth int
}

// IsLeaf reports whether the node has no children.
func (n *TopicNode) IsLeaf() bool { return len(n.Children) == 0 }

// HierarchyConfig configures BuildHierarchy.
type HierarchyConfig struct {
	// Branch is the number of children per split (default 2: bisecting).
	Branch int
	// MaxDepth limits the tree depth (default 3).
	MaxDepth int
	// MinLeaf stops splitting nodes with fewer members (default 8).
	MinLeaf int
	// Seed seeds the k-means runs.
	Seed int64
}

func (c *HierarchyConfig) setDefaults() {
	if c.Branch < 2 {
		c.Branch = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 8
	}
}

// BuildHierarchy builds a topic tree over the corpus by recursive
// (divisive) spherical k-means: each node with enough members is split into
// Branch children until MaxDepth.
func BuildHierarchy(vectors []mlcore.SparseVector, cfg HierarchyConfig) (*TopicNode, error) {
	if len(vectors) == 0 {
		return nil, ErrNoVectors
	}
	cfg.setDefaults()
	all := make([]int, len(vectors))
	for i := range all {
		all[i] = i
	}
	root := &TopicNode{ID: "root", Members: all, Centroid: meanDirection(vectors, all)}
	splitNode(root, vectors, cfg)
	return root, nil
}

func splitNode(node *TopicNode, vectors []mlcore.SparseVector, cfg HierarchyConfig) {
	if node.Depth >= cfg.MaxDepth || len(node.Members) < cfg.MinLeaf*cfg.Branch {
		return
	}
	sub := make([]mlcore.SparseVector, len(node.Members))
	for i, m := range node.Members {
		sub[i] = vectors[m]
	}
	k := cfg.Branch
	if k > len(sub) {
		k = len(sub)
	}
	res, err := KMeans(sub, k, 30, cfg.Seed+int64(len(node.ID)))
	if err != nil {
		return
	}
	groups := make([][]int, k)
	for i, c := range res.Assignments {
		groups[c] = append(groups[c], node.Members[i])
	}
	for c, members := range groups {
		if len(members) == 0 {
			continue
		}
		child := &TopicNode{
			ID:       fmt.Sprintf("%s/%d", node.ID, c),
			Centroid: res.Centroids[c],
			Members:  members,
			Depth:    node.Depth + 1,
		}
		node.Children = append(node.Children, child)
	}
	// Degenerate split (everything in one child): stop refining.
	if len(node.Children) < 2 {
		node.Children = nil
		return
	}
	for _, child := range node.Children {
		splitNode(child, vectors, cfg)
	}
}

// meanDirection returns the normalised mean of the selected vectors.
func meanDirection(vectors []mlcore.SparseVector, idx []int) mlcore.SparseVector {
	sum := make(mlcore.SparseVector)
	for _, i := range idx {
		sum.Add(vectors[i], 1)
	}
	return sum.L2Normalize()
}

// TopicAssignment is one topic with its probability for an article.
type TopicAssignment struct {
	// Node is the assigned topic node.
	Node *TopicNode
	// Prob is the soft-assignment probability along the root-to-node path.
	Prob float64
}

// Assign descends the tree from the root, at each level distributing
// probability over children by a softmax of cosine similarities
// (temperature tau; tau <= 0 defaults to 0.1). It returns every node whose
// cumulative probability is at least minProb, ordered root-first; the root
// itself is excluded. This yields the paper's "one or more topics per
// article" semantics.
func Assign(root *TopicNode, v mlcore.SparseVector, tau, minProb float64) []TopicAssignment {
	if tau <= 0 {
		tau = 0.1
	}
	// The document vector is fixed for the whole walk: sort its index set
	// and take its norm once instead of inside every child similarity.
	doc := indexVec(v)
	var out []TopicAssignment
	var walk func(node *TopicNode, prob float64)
	walk = func(node *TopicNode, prob float64) {
		if node.IsLeaf() {
			return
		}
		sims := make([]float64, len(node.Children))
		maxSim := math.Inf(-1)
		for i, ch := range node.Children {
			sims[i] = cosine(doc, indexVec(ch.Centroid)) / tau
			if sims[i] > maxSim {
				maxSim = sims[i]
			}
		}
		var z float64
		for i := range sims {
			sims[i] = math.Exp(sims[i] - maxSim)
			z += sims[i]
		}
		for i, ch := range node.Children {
			p := prob * sims[i] / z
			if p >= minProb {
				out = append(out, TopicAssignment{Node: ch, Prob: p})
				walk(ch, p)
			}
		}
	}
	walk(root, 1)
	return out
}

// Leaves returns the leaf nodes of the tree in depth-first order.
func Leaves(root *TopicNode) []*TopicNode {
	var out []*TopicNode
	var walk func(n *TopicNode)
	walk = func(n *TopicNode) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return out
}

// NodeCount returns the total number of nodes including the root.
func NodeCount(root *TopicNode) int {
	count := 1
	for _, c := range root.Children {
		count += NodeCount(c)
	}
	return count
}

// TopTerms returns the indices of the n strongest centroid terms of a node
// (use a Vocabulary to map back to strings).
func (n *TopicNode) TopTerms(count int) []int { return n.Centroid.TopK(count) }
