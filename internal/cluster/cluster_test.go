package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/mlcore"
)

// threeBlobVectors builds three well-separated groups of sparse vectors:
// group g has mass on features [g*10, g*10+5).
func threeBlobVectors(perGroup int, seed int64) ([]mlcore.SparseVector, []int) {
	rng := rand.New(rand.NewSource(seed))
	var vs []mlcore.SparseVector
	var gold []int
	for g := 0; g < 3; g++ {
		for i := 0; i < perGroup; i++ {
			v := make(mlcore.SparseVector)
			for j := 0; j < 5; j++ {
				v[g*10+j] = 0.5 + rng.Float64()
			}
			// A little cross-group noise.
			v[30+rng.Intn(5)] = 0.1 * rng.Float64()
			vs = append(vs, v.L2Normalize())
			gold = append(gold, g)
		}
	}
	return vs, gold
}

// clusterPurity computes the fraction of points whose cluster's majority
// gold label matches their own.
func clusterPurity(assign, gold []int, k int) float64 {
	counts := make([]map[int]int, k)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i, c := range assign {
		counts[c][gold[i]]++
	}
	correct := 0
	for _, m := range counts {
		best := 0
		for _, n := range m {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func TestKMeansRecoversBlobs(t *testing.T) {
	vs, gold := threeBlobVectors(30, 1)
	res, err := KMeans(vs, 3, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	if purity := clusterPurity(res.Assignments, gold, 3); purity < 0.95 {
		t.Errorf("purity too low: %v", purity)
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
	if len(res.Centroids) != 3 {
		t.Errorf("centroids: %d", len(res.Centroids))
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, 10, 0); err != ErrNoVectors {
		t.Errorf("empty: %v", err)
	}
	vs, _ := threeBlobVectors(2, 2)
	if _, err := KMeans(vs, 0, 10, 0); err != ErrBadK {
		t.Errorf("k=0: %v", err)
	}
	if _, err := KMeans(vs, 100, 10, 0); err != ErrBadK {
		t.Errorf("k>n: %v", err)
	}
}

func TestKMeansK1(t *testing.T) {
	vs, _ := threeBlobVectors(5, 3)
	res, err := KMeans(vs, 1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Assignments {
		if a != 0 {
			t.Fatal("k=1 must assign all to cluster 0")
		}
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vs, _ := threeBlobVectors(20, 4)
	a, _ := KMeans(vs, 3, 50, 7)
	b, _ := KMeans(vs, 3, 50, 7)
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed should give same assignment")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	vs := make([]mlcore.SparseVector, 6)
	for i := range vs {
		vs[i] = mlcore.SparseVector{0: 1}
	}
	res, err := KMeans(vs, 2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 6 {
		t.Error("assignments missing")
	}
}

func TestBuildHierarchyShape(t *testing.T) {
	vs, _ := threeBlobVectors(40, 5)
	root, err := BuildHierarchy(vs, HierarchyConfig{Branch: 3, MaxDepth: 2, MinLeaf: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if root.ID != "root" || root.Depth != 0 {
		t.Errorf("root: %+v", root)
	}
	if len(root.Members) != 120 {
		t.Errorf("root members: %d", len(root.Members))
	}
	if root.IsLeaf() {
		t.Fatal("root should have been split")
	}
	// Every member appears exactly once among children.
	seen := make(map[int]int)
	for _, c := range root.Children {
		for _, m := range c.Members {
			seen[m]++
		}
	}
	if len(seen) != 120 {
		t.Errorf("children cover %d of 120 members", len(seen))
	}
	for m, n := range seen {
		if n != 1 {
			t.Fatalf("member %d appears %d times", m, n)
		}
	}
	if NodeCount(root) < 4 {
		t.Errorf("tree too small: %d nodes", NodeCount(root))
	}
}

func TestBuildHierarchyEmpty(t *testing.T) {
	if _, err := BuildHierarchy(nil, HierarchyConfig{}); err != ErrNoVectors {
		t.Errorf("want ErrNoVectors, got %v", err)
	}
}

func TestBuildHierarchySmallCorpusStaysLeaf(t *testing.T) {
	vs, _ := threeBlobVectors(2, 6) // 6 vectors < MinLeaf*Branch
	root, err := BuildHierarchy(vs, HierarchyConfig{Branch: 2, MaxDepth: 3, MinLeaf: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsLeaf() {
		t.Error("tiny corpus should not split")
	}
}

func TestAssignConcentratesOnOwnBlob(t *testing.T) {
	vs, gold := threeBlobVectors(40, 7)
	root, err := BuildHierarchy(vs, HierarchyConfig{Branch: 3, MaxDepth: 1, MinLeaf: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 3 {
		t.Skipf("split produced %d children; need 3 for this check", len(root.Children))
	}
	// Find which child holds the majority of each gold group.
	majority := make(map[int]*TopicNode)
	for _, c := range root.Children {
		counts := map[int]int{}
		for _, m := range c.Members {
			counts[gold[m]]++
		}
		bestG, bestN := -1, 0
		for g, n := range counts {
			if n > bestN {
				bestG, bestN = g, n
			}
		}
		majority[bestG] = c
	}
	// A fresh vector from group 0 should be assigned to group 0's node
	// with dominant probability.
	probe := make(mlcore.SparseVector)
	for j := 0; j < 5; j++ {
		probe[j] = 1
	}
	probe.L2Normalize()
	assignments := Assign(root, probe, 0.1, 0.01)
	if len(assignments) == 0 {
		t.Fatal("no assignments")
	}
	var bestNode *TopicNode
	bestP := -1.0
	total := 0.0
	for _, a := range assignments {
		total += a.Prob
		if a.Prob > bestP {
			bestP, bestNode = a.Prob, a.Node
		}
	}
	if want := majority[0]; want != nil && bestNode != want {
		t.Errorf("probe assigned to %s (p=%.2f), want %s", bestNode.ID, bestP, want.ID)
	}
	if total > 1.0001 {
		t.Errorf("probabilities exceed 1: %v", total)
	}
}

func TestAssignProbabilitiesSumAtMostOnePerLevel(t *testing.T) {
	vs, _ := threeBlobVectors(40, 8)
	root, _ := BuildHierarchy(vs, HierarchyConfig{Branch: 2, MaxDepth: 2, MinLeaf: 5, Seed: 3})
	probe := vs[0]
	assignments := Assign(root, probe, 0.2, 0)
	levelSum := make(map[int]float64)
	for _, a := range assignments {
		levelSum[a.Node.Depth] += a.Prob
	}
	for depth, sum := range levelSum {
		if sum > 1.0001 {
			t.Errorf("depth %d probability sum %v > 1", depth, sum)
		}
	}
}

func TestLeavesAndTopTerms(t *testing.T) {
	vs, _ := threeBlobVectors(40, 9)
	root, _ := BuildHierarchy(vs, HierarchyConfig{Branch: 2, MaxDepth: 2, MinLeaf: 5, Seed: 4})
	leaves := Leaves(root)
	if len(leaves) == 0 {
		t.Fatal("no leaves")
	}
	total := 0
	for _, l := range leaves {
		total += len(l.Members)
	}
	if total != 120 {
		t.Errorf("leaves cover %d of 120", total)
	}
	terms := root.TopTerms(3)
	if len(terms) != 3 {
		t.Errorf("top terms: %v", terms)
	}
}
