package scilens_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	scilens "repro"
)

// testDoc is a minimal news document in the markup subset the extractor
// handles: headline, byline, paragraphs and references.
const testDoc = `<html><head><title>Vaccine trial shows strong immune response</title></head>
<body>
<span class="byline">By Jane Roe</span>
<p>Researchers reported measured results from a phase two trial. The data
were reviewed before publication and the sample included 240 participants.</p>
<p>The study, published in a peer-reviewed journal, is available at
<a href="https://www.nature.com/articles/vaccine-trial">the journal</a>
and was discussed by <a href="https://outlet-excellent-1.example/followup">another outlet</a>.</p>
</body></html>`

const testURL = "https://newsroom.example/2020/02/vaccine-trial"

func TestEvaluateDocument(t *testing.T) {
	report, err := scilens.EvaluateDocument(testDoc, testURL)
	if err != nil {
		t.Fatal(err)
	}
	if report.Article.Title == "" {
		t.Error("no title extracted")
	}
	if !report.Content.HasByline {
		t.Error("byline missed")
	}
	if report.Context.ScientificCount < 1 {
		t.Errorf("scientific reference missed: %+v", report.Context)
	}
	if report.Composite <= 0 || report.Composite > 1 {
		t.Errorf("composite out of range: %v", report.Composite)
	}
}

func TestEvaluateDocumentEmpty(t *testing.T) {
	if _, err := scilens.EvaluateDocument("", ""); err == nil {
		t.Error("empty document should fail")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	cfg := scilens.BootstrapConfig{Seed: 7, Days: 6, RateScale: 0.2, ReactionScale: 0.2}
	p1, w1, err := scilens.Bootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, w2, err := scilens.Bootstrap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Articles) == 0 || len(w1.Articles) != len(w2.Articles) {
		t.Fatalf("world sizes: %d vs %d", len(w1.Articles), len(w2.Articles))
	}
	a1, err := p1.AssessURL(w1.Articles[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.AssessURL(w2.Articles[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	if *a1 != *a2 {
		t.Errorf("assessments differ:\n%+v\n%+v", a1, a2)
	}
}

func TestBootstrapDefaultsApplied(t *testing.T) {
	p, w, err := scilens.Bootstrap(scilens.BootstrapConfig{Days: 3, RateScale: 0.1, ReactionScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Days != 3 {
		t.Errorf("days: %d", w.Days)
	}
	if p.Stats().Postings != len(w.Articles) {
		t.Errorf("ingested %d of %d", p.Stats().Postings, len(w.Articles))
	}
	// The default clock is pinned to the window end, after every event.
	if got := p.Clock(); !got.After(w.Start) {
		t.Errorf("clock: %v", got)
	}
}

func TestExpertReviewFlow(t *testing.T) {
	p, w, err := scilens.Bootstrap(scilens.BootstrapConfig{Seed: 3, Days: 4, RateScale: 0.15, ReactionScale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	art := w.Articles[0]
	review := scilens.Review{ArticleID: art.ID, Reviewer: "expert-1", Time: p.Clock()}
	for c := range review.Scores {
		review.Scores[c] = 5
	}
	review.Scores[scilens.Clickbaitness] = 3
	if _, err := p.Reviews.Submit(review); err != nil {
		t.Fatal(err)
	}
	a, err := p.AssessID(art.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := (5.0*6 + 3.0) / 7
	if a.ExpertCount != 1 || a.ExpertOverall < want-1e-9 || a.ExpertOverall > want+1e-9 {
		t.Errorf("aggregate: count=%d overall=%v want %v", a.ExpertCount, a.ExpertOverall, want)
	}
}

func TestErrNotIngestedExposed(t *testing.T) {
	p, err := scilens.New(scilens.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AssessURL("https://nowhere.example/x"); !errors.Is(err, scilens.ErrNotIngested) {
		t.Errorf("sentinel not exposed: %v", err)
	}
}

func TestHTTPServerEndToEnd(t *testing.T) {
	p, w, err := scilens.Bootstrap(scilens.BootstrapConfig{Seed: 5, Days: 8, RateScale: 0.25, ReactionScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(scilens.NewHTTPServer(p))
	defer srv.Close()

	// Stored-article assessment (Figure 3 payload).
	resp, err := srv.Client().Get(srv.URL + "/api/assess?url=" + w.Articles[0].URL)
	if err != nil {
		t.Fatal(err)
	}
	var assessment scilens.Assessment
	if err := json.NewDecoder(resp.Body).Decode(&assessment); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || assessment.ArticleID != w.Articles[0].ID {
		t.Errorf("assess: status=%d got %+v", resp.StatusCode, assessment.ArticleID)
	}

	// Arbitrary-document assessment.
	body, _ := json.Marshal(map[string]string{"html": testDoc, "url": testURL})
	resp, err = srv.Client().Post(srv.URL+"/api/assess", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || doc["title"] == "" {
		t.Errorf("document assess: %d %v", resp.StatusCode, doc)
	}

	// Topic insights (Figure 4 payload).
	resp, err = srv.Client().Get(srv.URL + "/api/insights/activity?days=8")
	if err != nil {
		t.Fatal(err)
	}
	var activity struct {
		Days   int                  `json:"days"`
		Series map[string][]float64 `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&activity); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if activity.Days != 8 || len(activity.Series) != scilens.NumClasses {
		t.Errorf("activity: %+v", activity)
	}
}

func TestRatingClassLabels(t *testing.T) {
	order := []scilens.RatingClass{
		scilens.Excellent, scilens.Good, scilens.Mixed, scilens.Poor, scilens.VeryPoor,
	}
	if len(order) != scilens.NumClasses {
		t.Fatalf("class count: %d", scilens.NumClasses)
	}
	seen := map[string]bool{}
	for _, c := range order {
		label := c.String()
		if label == "" || seen[label] {
			t.Errorf("bad label for class %d: %q", c, label)
		}
		seen[label] = true
	}
}

func ExampleEvaluateDocument() {
	report, err := scilens.EvaluateDocument(testDoc, testURL)
	if err != nil {
		panic(err)
	}
	fmt.Println("title:", report.Article.Title)
	fmt.Println("byline:", report.Content.HasByline)
	fmt.Println("scientific refs:", report.Context.ScientificCount)
	// Output:
	// title: Vaccine trial shows strong immune response
	// byline: true
	// scientific refs: 1
}

func TestDailyCycleThroughFacade(t *testing.T) {
	p, w, err := scilens.Bootstrap(scilens.BootstrapConfig{Seed: 13, Days: 8, RateScale: 0.3, ReactionScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pool := scilens.NewComputePool(4, 1)
	date := w.Start.AddDate(0, 0, w.Days)
	rep, err := p.RunDaily(pool, date)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MigratedRows == 0 || rep.Clickbait == nil || rep.Stance == nil || rep.Topics == nil {
		t.Errorf("incomplete daily cycle: %+v", rep)
	}
	facts, err := p.BuildFactsFromWarehouse(date)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != len(w.Articles) {
		t.Errorf("warehouse facts: %d of %d", len(facts), len(w.Articles))
	}
	gold := map[string]bool{}
	for _, a := range w.Articles {
		gold[a.ID] = a.Clickbait
	}
	eval, err := p.EvaluateClickbaitModel(gold)
	if err != nil {
		t.Fatal(err)
	}
	if eval.Labelled != len(w.Articles) || eval.F1 <= 0 {
		t.Errorf("model eval: %+v", eval)
	}
}
