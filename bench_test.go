// Benchmarks regenerating every evaluation artifact of the paper (Figures
// 3–5, prose claims C1 and C2) plus the ablation benches DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// The corresponding data series are printed by cmd/scilens-eval; these
// benches measure the cost of regenerating them through the real pipeline.
package scilens_test

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	scilens "repro"
	"repro/internal/analytics"
	"repro/internal/compute"
	"repro/internal/dfs"
	"repro/internal/migrate"
	"repro/internal/rdbms"
	"repro/internal/socialind"
	"repro/internal/stream"
	"repro/internal/synth"
)

// benchWorld is the shared fixture: a mid-size 20-day corpus ingested once.
var (
	benchOnce     sync.Once
	benchPlatform *scilens.Platform
	benchW        *scilens.World
	benchErr      error
)

func benchFixture(b *testing.B) (*scilens.Platform, *scilens.World) {
	b.Helper()
	benchOnce.Do(func() {
		benchPlatform, benchW, benchErr = scilens.Bootstrap(scilens.BootstrapConfig{
			Seed: 1, Days: 20, RateScale: 0.5, ReactionScale: 0.3,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchPlatform, benchW
}

// BenchmarkFigure3SingleAssessment measures the real-time single-article
// assessment path (paper Figure 3): store lookup, social aggregates and
// expert-review aggregation per request.
func BenchmarkFigure3SingleAssessment(b *testing.B) {
	p, w := benchFixture(b)
	ids := make([]string, len(w.Articles))
	for i, a := range w.Articles {
		ids[i] = a.ID
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.AssessID(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ColdEvaluation measures evaluating an arbitrary document
// through the full indicator engine with the cache bypassed (the POST
// /api/assess path for never-seen articles).
func BenchmarkFigure3ColdEvaluation(b *testing.B) {
	_, w := benchFixture(b)
	engine := scilens.NewEngine(scilens.EngineConfig{CacheSize: -1})
	docs := make([]string, 0, 256)
	for _, a := range w.Articles[:min(256, len(w.Articles))] {
		docs = append(docs, a.RawHTML)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Evaluate(docs[i%len(docs)], "", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3WarmEvaluation measures the cached document-evaluation
// path: repeated POST /api/assess requests for already-seen documents are
// served from the engine's content-hash report cache.
func BenchmarkFigure3WarmEvaluation(b *testing.B) {
	_, w := benchFixture(b)
	engine := scilens.NewEngine(scilens.EngineConfig{})
	docs := make([]string, 0, 256)
	urls := make([]string, 0, 256)
	for _, a := range w.Articles[:min(256, len(w.Articles))] {
		docs = append(docs, a.RawHTML)
		urls = append(urls, a.URL)
	}
	// Prime the cache.
	for i := range docs {
		if _, err := engine.Evaluate(docs[i], urls[i], nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Evaluate(docs[i%len(docs)], urls[i%len(docs)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ConcurrentAssessment drives the stored-assessment path
// from parallel clients — the serving shape of the real-time Indicators
// API under load.
func BenchmarkFigure3ConcurrentAssessment(b *testing.B) {
	p, w := benchFixture(b)
	ids := make([]string, len(w.Articles))
	for i, a := range w.Articles {
		ids[i] = a.ID
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := p.AssessID(ids[i%len(ids)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkFigure4NewsroomActivity regenerates the Figure 4 series (facts
// scan + per-outlet daily shares + class means + smoothing).
func BenchmarkFigure4NewsroomActivity(b *testing.B) {
	p, w := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Figure4(w.Start, w.Days); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5ReactionsKDE regenerates the Figure 5 left panel (social
// reactions KDE per rating class).
func BenchmarkFigure5ReactionsKDE(b *testing.B) {
	p, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Figure5Engagement(128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5EvidenceKDE regenerates the Figure 5 right panel
// (scientific-reference-ratio KDE per rating class).
func BenchmarkFigure5EvidenceKDE(b *testing.B) {
	p, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Figure5Evidence(128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClaimC1IngestThroughput measures the full streaming ingestion
// path — queue, extraction, indicators, store — with producer/consumer
// overlap, and reports events/s (claim C1: "handling daily thousands of
// news articles").
func BenchmarkClaimC1IngestThroughput(b *testing.B) {
	world := scilens.GenerateWorld(scilens.WorldConfig{
		Seed: 2, Days: 10, RateScale: 0.5, ReactionScale: 0.3,
	})
	events := len(world.Events())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := scilens.New(scilens.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.IngestWorld(world, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(events)/perOp, "events/s")
	b.ReportMetric(float64(len(world.Articles))/perOp, "articles/s")
}

// BenchmarkClaimC2Consensus measures the indicator-assisted consensus
// experiment over the stored corpus.
func BenchmarkClaimC2Consensus(b *testing.B) {
	p, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunConsensusExperiment(scilens.ConsensusConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIndexVsScan compares the real-time article-lookup path
// with its secondary hash index against a full table scan — the "why an
// RDBMS with indexes" design choice.
func BenchmarkAblationIndexVsScan(b *testing.B) {
	p, w := benchFixture(b)
	table, err := p.DB.Table("articles")
	if err != nil {
		b.Fatal(err)
	}
	urls := make([]string, len(w.Articles))
	for i, a := range w.Articles {
		urls[i] = a.URL
	}
	b.Run("indexed-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rows, err := table.LookupEq("url", rdbms.String(urls[i%len(urls)]))
			if err != nil || len(rows) != 1 {
				b.Fatalf("lookup: %v (%d rows)", err, len(rows))
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		urlCol := 3 // articles schema: url is column 3
		for i := 0; i < b.N; i++ {
			want := urls[i%len(urls)]
			found := 0
			table.Scan(func(r rdbms.Row) bool {
				if r[urlCol].Str() == want {
					found++
					return false
				}
				return true
			})
			if found != 1 {
				b.Fatal("not found")
			}
		}
	})
}

// BenchmarkAblationParallelCompute runs the same feature-extraction job on
// the compute layer with 1 vs. 8 workers — the "why a Spark-like layer"
// design choice.
func BenchmarkAblationParallelCompute(b *testing.B) {
	_, w := benchFixture(b)
	titles := make([]string, 0, 4096)
	for _, a := range w.Articles {
		titles = append(titles, a.RawHTML)
	}
	job := func(pool *compute.Pool, parts int) error {
		ds := compute.FromSlice(titles, parts)
		tokenised, err := compute.Map(pool, ds, func(s string) (int, error) {
			return len(socialind.Tokens(s)), nil
		})
		if err != nil {
			return err
		}
		_, err = compute.Reduce(pool, tokenised, 0,
			func(acc, n int) int { return acc + n },
			func(a, b int) int { return a + b })
		return err
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pool := compute.NewPool(workers, 1)
			for i := 0; i < b.N; i++ {
				if err := job(pool, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSequentialVsParallelAnalytics compares the Figure 4
// job computed sequentially against the partition-parallel compute-layer
// version over a large fact set (the daily analytics of §3.3).
func BenchmarkAblationSequentialVsParallelAnalytics(b *testing.B) {
	p, w := benchFixture(b)
	facts, err := p.BuildFacts()
	if err != nil {
		b.Fatal(err)
	}
	// Replicate facts to a size where parallelism matters.
	big := make([]analytics.ArticleFact, 0, len(facts)*16)
	for i := 0; i < 16; i++ {
		big = append(big, facts...)
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analytics.NewsroomActivity(big, w.Start, w.Days); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{2, 8} {
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			pool := compute.NewPool(workers, 1)
			for i := 0; i < b.N; i++ {
				if _, err := analytics.NewsroomActivityParallel(pool, big, w.Start, w.Days); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStanceLexVsModel compares lexicon-only stance
// classification against the blended lexicon+naive-Bayes path the platform
// trains periodically.
func BenchmarkAblationStanceLexVsModel(b *testing.B) {
	_, w := benchFixture(b)
	var replies []string
	for _, cascade := range w.Cascades {
		for _, post := range cascade[1:] {
			if post.Text != "" {
				replies = append(replies, post.Text)
			}
		}
		if len(replies) > 8192 {
			break
		}
	}
	if len(replies) == 0 {
		b.Fatal("no replies in fixture")
	}
	lex := socialind.NewStanceClassifier()

	// Weak-label with the lexicon, then train the model — the platform's
	// periodic training job.
	labels := make([]socialind.Stance, len(replies))
	for i, r := range replies {
		labels[i] = lex.Classify(r)
	}
	nb := socialind.TrainStanceModel(replies, labels)
	blended := socialind.NewStanceClassifier()
	blended.SetModel(nb)

	b.Run("lexicon-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lex.Classify(replies[i%len(replies)])
		}
	})
	b.Run("lexicon+model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			blended.Classify(replies[i%len(replies)])
		}
	})
}

// BenchmarkAblationMigrationBatch sweeps the daily-migration write-batch
// size: how many bytes are buffered per write pushed through the DFS block
// pipeline.
func BenchmarkAblationMigrationBatch(b *testing.B) {
	p, _ := benchFixture(b)
	table, err := p.DB.Table("articles")
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{512, 4 << 10, 64 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("buf-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cluster, err := dfs.NewCluster(dfs.Config{DataNodes: 4, BlockSize: 1 << 18, Replication: 3})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := migrate.ExportBuffered(table, cluster, "warehouse/bench.jsonl", size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamPublishConsume isolates the broker hot path: publish and
// consume one message through a partitioned topic.
func BenchmarkStreamPublishConsume(b *testing.B) {
	world := scilens.GenerateWorld(scilens.WorldConfig{Seed: 3, Days: 3, RateScale: 0.2, ReactionScale: 0.1})
	events := world.Events()
	payloads := make([][]byte, len(events))
	for i := range events {
		payload, err := events[i].Encode()
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = payload
	}
	p, err := scilens.New(scilens.Config{QueueCapacity: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	consumer, err := p.Broker.Subscribe("postings", "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer consumer.Close()
	b.ResetTimer()
	consumed := 0
	for i := 0; i < b.N; i++ {
		ev := &events[i%len(events)]
		if _, err := p.Broker.Publish("postings", ev.ArticleURL, payloads[i%len(payloads)]); err != nil {
			b.Fatal(err)
		}
		msgs, err := consumer.Poll(16)
		if err != nil {
			b.Fatal(err)
		}
		consumed += len(msgs)
		if i%1024 == 0 {
			if err := consumer.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := consumer.Commit(); err != nil {
		b.Fatal(err)
	}
	_ = consumed
}

// BenchmarkStreamIngest compares the synchronous ingest loop the platform
// used before the streaming pipeline (poll → decode → IngestEvent, one
// event at a time) against the staged pipeline (sharded queues → decode →
// micro-batched evaluation → coalesced commits) across worker counts,
// reporting events/s. Both sides consume the same pre-encoded firehose
// payloads, so the codec cost is identical and the delta isolates the
// pipeline's batching and stage parallelism.
func BenchmarkStreamIngest(b *testing.B) {
	world := scilens.GenerateWorld(scilens.WorldConfig{
		Seed: 4, Days: 8, RateScale: 0.4, ReactionScale: 0.3,
	})
	events := world.Events()
	payloads := make([][]byte, len(events))
	for i := range events {
		p, err := events[i].Encode()
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = p
	}
	perSec := func(b *testing.B) {
		b.ReportMetric(float64(len(events))/(b.Elapsed().Seconds()/float64(b.N)), "events/s")
	}

	b.Run("sync-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := scilens.New(scilens.Config{})
			if err != nil {
				b.Fatal(err)
			}
			for _, payload := range payloads {
				ev, err := synth.DecodeEvent(payload)
				if err != nil {
					b.Fatal(err)
				}
				if err := p.IngestEvent(&ev); err != nil {
					b.Fatal(err)
				}
			}
			p.Close()
		}
		b.StopTimer()
		perSec(b)
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("streamed-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := scilens.New(scilens.Config{
					StreamShards:        shards,
					StreamQueueCapacity: 4096,
				})
				if err != nil {
					b.Fatal(err)
				}
				for j, payload := range payloads {
					if err := p.Pipeline.Enqueue(events[j].ArticleURL, payload); err != nil {
						b.Fatal(err)
					}
				}
				p.Pipeline.Flush()
				if st := p.StreamStats(); st.DeadLettered != 0 {
					b.Fatalf("dead letters: %+v", st)
				}
				p.Close()
			}
			b.StopTimer()
			perSec(b)
		})
	}
	// streamed-adaptive pins the controller's overhead on a uniform,
	// non-bursty feed: it must stay within a few percent of the fixed
	// streamed-4 run (BENCH_PR9.json tracks the A/B).
	b.Run("streamed-adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := scilens.New(scilens.Config{
				StreamShards:        4,
				StreamQueueCapacity: 4096,
				StreamAdaptive:      true,
			})
			if err != nil {
				b.Fatal(err)
			}
			for j, payload := range payloads {
				if err := p.Pipeline.Enqueue(events[j].ArticleURL, payload); err != nil {
					b.Fatal(err)
				}
			}
			p.Pipeline.Flush()
			if st := p.StreamStats(); st.DeadLettered != 0 {
				b.Fatalf("dead letters: %+v", st)
			}
			p.Close()
		}
		b.StopTimer()
		perSec(b)
	})
}

// burstBlocks packs a world's reaction events into a flash-crowd
// profile: the hottest articles' reaction cascades are grouped into
// dense storm blocks (a handful of stories going viral at once) and the
// rest becomes the steady background feed, in firehose order.
// Deterministic for a given event slice.
func burstBlocks(events []synth.Event, storms, stormTarget int) (blocks [][]int, background []int) {
	byArticle := map[string][]int{}
	for i := range events {
		byArticle[events[i].ArticleURL] = append(byArticle[events[i].ArticleURL], i)
	}
	urls := make([]string, 0, len(byArticle))
	for u := range byArticle {
		urls = append(urls, u)
	}
	// Hottest first; URL tie-break keeps the order stable across runs.
	sort.Slice(urls, func(a, b int) bool {
		if len(byArticle[urls[a]]) != len(byArticle[urls[b]]) {
			return len(byArticle[urls[a]]) > len(byArticle[urls[b]])
		}
		return urls[a] < urls[b]
	})
	var cur []int
	for _, u := range urls {
		if len(blocks) < storms {
			cur = append(cur, byArticle[u]...)
			if len(cur) >= stormTarget {
				blocks = append(blocks, cur)
				cur = nil
			}
			continue
		}
		background = append(background, byArticle[u]...)
	}
	if len(cur) > 0 {
		blocks = append(blocks, cur)
	}
	sort.Ints(background) // original firehose order
	return blocks, background
}

// BenchmarkBurstIngest measures shedding under a flash-crowd reaction
// profile at deliberately modest per-shard queue capacity. Each
// iteration pre-loads every article posting (block mode), then drives
// the reaction feed in shed mode (TryEnqueue: a full shard drops the
// event instead of parking the producer): the steady background paces
// in short waves, and periodically a storm block — the hottest
// articles' cascades back to back — arrives at line rate. The headline
// metric is the shed percentage of the reaction feed. The A/B is a
// fixed 4-shard pipeline vs the adaptive controller (grow to 16
// shards, widen batches to 512): a storm overflows the static 4x256
// aggregate queue, while the grown shard set absorbs it and the wider
// batches drain the backlog between storms (BENCH_PR9.json records the
// acceptance A/B). Some dead letters are expected: shedding part of a
// reply tree orphans its descendants.
func BenchmarkBurstIngest(b *testing.B) {
	world := scilens.GenerateWorld(scilens.WorldConfig{
		Seed: 6, Days: 10, RateScale: 0.6, ReactionScale: 0.5,
	})
	events := world.Events()
	payloads := make([][]byte, len(events))
	var postings, reactions []int
	for i := range events {
		p, err := events[i].Encode()
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = p
		if events[i].Type == synth.EventTypePosting {
			postings = append(postings, i)
		} else {
			reactions = append(reactions, i)
		}
	}
	reactionEvents := make([]synth.Event, len(reactions))
	for j, idx := range reactions {
		reactionEvents[j] = events[idx]
	}
	blocks, background := burstBlocks(reactionEvents, 6, 2500)
	// burstBlocks indexed into the reactions slice; map back to events.
	remap := func(idxs []int) []int {
		out := make([]int, len(idxs))
		for j, k := range idxs {
			out[j] = reactions[k]
		}
		return out
	}
	for i := range blocks {
		blocks[i] = remap(blocks[i])
	}
	background = remap(background)
	bgRun := len(background) / (len(blocks) + 1)

	run := func(b *testing.B, cfg scilens.Config) {
		var offered, shed, committed uint64
		for i := 0; i < b.N; i++ {
			p, err := scilens.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Pre-load the articles so storms are pure reaction pressure,
			// not orphaned cascades whose posting was shed.
			for _, idx := range postings {
				if err := p.Pipeline.Enqueue(events[idx].ArticleURL, payloads[idx]); err != nil {
					b.Fatal(err)
				}
			}
			p.Pipeline.Flush()
			try := func(idx int) {
				err := p.Pipeline.TryEnqueue(events[idx].ArticleURL, payloads[idx])
				if err != nil && !errors.Is(err, stream.ErrFull) {
					b.Fatal(err)
				}
			}
			// feedBg paces the steady feed: short producer waves with brief
			// gaps that also hand the (possibly single) core to the workers.
			feedBg := func(seg []int) {
				for w := 0; w < len(seg); w += 64 {
					end := w + 64
					if end > len(seg) {
						end = len(seg)
					}
					for _, idx := range seg[w:end] {
						try(idx)
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
			pos := 0
			for _, blk := range blocks {
				end := pos + bgRun
				if end > len(background) {
					end = len(background)
				}
				feedBg(background[pos:end])
				pos = end
				for _, idx := range blk {
					try(idx) // the storm arrives at line rate
				}
			}
			feedBg(background[pos:])
			p.Pipeline.Flush()
			st := p.StreamStats()
			offered += uint64(len(background))
			for _, blk := range blocks {
				offered += uint64(len(blk))
			}
			shed += st.Shed
			committed += st.Committed
			p.Close()
		}
		b.StopTimer()
		b.ReportMetric(100*float64(shed)/float64(offered), "shed_pct")
		b.ReportMetric(float64(committed)/b.Elapsed().Seconds(), "committed/s")
	}
	b.Run("static-4", func(b *testing.B) {
		run(b, scilens.Config{
			StreamShards:        4,
			StreamQueueCapacity: 256,
		})
	})
	b.Run("adaptive", func(b *testing.B) {
		run(b, scilens.Config{
			StreamShards:        4,
			StreamQueueCapacity: 256,
			StreamAdaptive:      true,
			StreamMaxShards:     16,
			StreamMaxBatch:      512,
			StreamAdaptInterval: 10 * time.Millisecond,
		})
	})
}

// BenchmarkDailyMigration measures the full daily snapshot job over the
// fixture's three tables.
func BenchmarkDailyMigration(b *testing.B) {
	p, w := benchFixture(b)
	date := w.Start.AddDate(0, 0, w.Days)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh prefix per iteration: re-exporting the same snapshot
		// date is rejected by design.
		job := &migrate.Job{
			DB: p.DB, Cluster: mustCluster(b), Tables: []string{"articles", "article_social", "replies"},
			Prefix: fmt.Sprintf("bench-%d", i),
		}
		if _, err := job.Run(date); err != nil {
			b.Fatal(err)
		}
	}
}

func mustCluster(b *testing.B) *dfs.Cluster {
	b.Helper()
	c, err := dfs.NewCluster(dfs.Config{DataNodes: 4, BlockSize: 1 << 18, Replication: 3})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkReindexCorpus measures whole-corpus batch re-evaluation (the
// post-retraining re-indexing job) at different compute-pool widths,
// reporting article throughput. The fixture's models are unchanged between
// iterations, so every run is forced past the model-generation watermark
// (which would otherwise skip every already-current row): it streams the
// full document store through the indicator pipeline and rewrites nothing
// — isolating evaluation + store traversal, the dominant cost of a real
// reindex.
func BenchmarkReindexCorpus(b *testing.B) {
	p, w := benchFixture(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pool := compute.NewPool(workers, 1)
			for i := 0; i < b.N; i++ {
				rep, err := p.ReindexCorpus(pool, scilens.ReindexForce())
				if err != nil {
					b.Fatal(err)
				}
				if rep.Articles != len(w.Articles) {
					b.Fatalf("reindexed %d of %d", rep.Articles, len(w.Articles))
				}
			}
			b.StopTimer()
			perOp := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(len(w.Articles))/perOp, "articles/s")
		})
	}
}
