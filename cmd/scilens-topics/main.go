// Command scilens-topics runs the platform's daily maintenance cycle
// (paper §3.3) over a synthetic corpus: the RDBMS → Distributed Storage
// migration, the periodic model-training jobs, and the unsupervised
// probabilistic hierarchical topic discovery. It then prints the
// discovered topic tree with term labels and tags a few held-out
// documents, demonstrating the generic→specific segmentation the paper
// describes ("Health" → "COVID-19").
//
// Usage:
//
//	scilens-topics [-seed N] [-days N] [-scale F] [-depth N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	scilens "repro"
	"repro/internal/cluster"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "world seed")
		days    = flag.Int("days", 20, "collection window length in days")
		scale   = flag.Float64("scale", 0.5, "outlet posting-rate scale")
		depth   = flag.Int("depth", 3, "maximum hierarchy depth")
		workers = flag.Int("workers", 4, "compute pool workers")
	)
	flag.Parse()
	if err := run(*seed, *days, *scale, *depth, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "scilens-topics:", err)
		os.Exit(1)
	}
}

func run(seed int64, days int, scale float64, depth, workers int) error {
	platform, world, err := scilens.Bootstrap(scilens.BootstrapConfig{
		Seed: seed, Days: days, RateScale: scale, ReactionScale: 0.2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d articles over %d days\n\n", len(world.Articles), world.Days)

	pool := scilens.NewComputePool(workers, 1)
	date := world.Start.AddDate(0, 0, world.Days)
	daily, err := platform.RunDaily(pool, date)
	if err != nil {
		return err
	}
	fmt.Println("daily maintenance cycle (§3.3):")
	fmt.Printf("  migrated rows:      %d\n", daily.MigratedRows)
	if daily.Clickbait != nil {
		fmt.Printf("  clickbait model:    %d weak labels, train accuracy %.3f\n",
			daily.Clickbait.Examples, daily.Clickbait.TrainAccuracy)
	}
	if daily.Stance != nil {
		fmt.Printf("  stance model:       %d replies, train accuracy %.3f\n",
			daily.Stance.Examples, daily.Stance.TrainAccuracy)
	}
	if daily.Topics == nil {
		return fmt.Errorf("topic discovery did not run")
	}
	fmt.Printf("  topic model:        %d documents, %d nodes, %d leaves\n\n",
		daily.Topics.Documents, daily.Topics.Nodes, daily.Topics.Leaves)

	fmt.Printf("discovered topic hierarchy (depth ≤ %d, labels = top centroid terms):\n", depth)
	printTree(daily.Topics, daily.Topics.Root, "")
	fmt.Println()

	fmt.Println("tagging held-out documents:")
	samples := []string{
		"New coronavirus vaccine trial reports strong antibody response in patients",
		"Telescope survey maps distant galaxies and their rotation curves",
		"Study links ultra-processed diet to heart disease risk",
	}
	for _, doc := range samples {
		fmt.Printf("  %q\n", doc)
		tags := daily.Topics.Tagger.Tag(doc)
		if len(tags) == 0 {
			fmt.Println("    (no discovered topic above threshold)")
			continue
		}
		for i, a := range tags {
			if i == 3 {
				break
			}
			fmt.Printf("    %-28s p=%.2f (depth %d)\n", a.Label, a.Prob, a.Depth)
		}
	}
	return nil
}

func printTree(rep *scilens.TopicModelReport, n *cluster.TopicNode, indent string) {
	label := rep.Tagger.Label(n.ID)
	fmt.Printf("%s%-30s %5d articles\n", indent, label, len(n.Members))
	for _, c := range n.Children {
		printTree(rep, c, indent+"  ")
	}
}
