// Command scilens-server runs the full SciLens News Platform: it assembles
// the system, streams a synthetic firehose through the ingestion path, and
// serves the Indicators API micro-services (paper §3.3) over HTTP.
//
// With -data-dir the store is durable: state recovers from the directory's
// snapshot + WAL on start (skipping the synthetic bootstrap when the
// recovered corpus is non-empty), every mutation is write-ahead logged,
// POST /api/checkpoint persists online, and a SIGINT/SIGTERM shutdown
// drains the pipeline and writes a final checkpoint.
//
// Usage:
//
//	scilens-server [-addr :8080] [-seed N] [-days N] [-scale F]
//	               [-adaptive] [-max-shards N] [-max-batch N]
//	               [-admit-rate F] [-admit-burst F]
//	               [-data-dir DIR] [-partitions N]
//	               [-fsync checkpoint|interval[:dur]|always] [-delta-limit N]
//	               [-checkpoint-interval DUR] [-checkpoint-wal-bytes N]
//	               [-debug-addr ADDR] [-replica-of URL] [-repl-addr ADDR]
//
// Endpoints:
//
//	GET  /api/assess?url=...|id=...   single-article assessment (Figure 3)
//	POST /api/assess                  evaluate an arbitrary document
//	GET  /api/insights/activity       newsroom activity series (Figure 4)
//	GET  /api/insights/engagement     reactions KDE (Figure 5 left)
//	GET  /api/insights/evidence       scientific-reference KDE (Figure 5 right)
//	GET  /api/insights/consensus      consensus experiment (claim C2)
//	POST /api/reviews                 submit an expert review (§3.2)
//	GET  /api/reviews?article_id=...  review aggregate for an article
//	POST /api/reindex                 re-evaluate the stored corpus
//	POST /api/checkpoint              persist the store online
//	GET  /api/health                  ingestion + storage counters
//	GET  /api/version                 build info, start time, uptime
//	GET  /api/debug/traces            retained request traces (?min_ms=N)
//	GET  /metrics                     Prometheus text exposition
//
// With -debug-addr a second listener additionally serves the telemetry
// routes plus net/http/pprof, kept off the public API address.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	scilens "repro"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		seed       = flag.Int64("seed", 1, "world seed")
		days       = flag.Int("days", 30, "collection window length in days")
		scale      = flag.Float64("scale", 0.5, "outlet posting-rate scale")
		reactions  = flag.Float64("reactions", 0.3, "social cascade size scale")
		adaptive   = flag.Bool("adaptive", false, "enable the adaptive ingestion controller: dynamic resharding and micro-batch tuning under load")
		maxShards  = flag.Int("max-shards", 0, "adaptive shard-growth ceiling (0 = 4x the shard count)")
		maxBatch   = flag.Int("max-batch", 0, "adaptive micro-batch ceiling (0 = 8x the batch size)")
		admitRate  = flag.Float64("admit-rate", 0, "per-source steady admission rate for POST /api/ingest, events/s (0 = admission off)")
		admitBurst = flag.Float64("admit-burst", 0, "per-source burst-lane admission rate, events/s (0 = same as -admit-rate)")
		dataDir    = flag.String("data-dir", "", "durable store directory (empty = in-memory)")
		partitions = flag.Int("partitions", 0, "table lock-stripe count (0 = default)")
		fsync      = flag.String("fsync", "checkpoint", "WAL fsync policy: checkpoint, interval[:dur] or always")
		deltaLimit = flag.Int("delta-limit", 0, "checkpoint delta-chain length before compaction (0 = default, <0 = always full)")
		ckptEvery  = flag.Duration("checkpoint-interval", 30*time.Second, "self-driving checkpoint cadence for durable stores (0 = no timer)")
		ckptBytes  = flag.Int64("checkpoint-wal-bytes", 8<<20, "checkpoint once the WAL grows this many bytes (0 = no byte trigger)")
		debugAddr  = flag.String("debug-addr", "", "debug listen address serving /metrics and pprof (empty = disabled)")
		replicaOf  = flag.String("replica-of", "", "primary base URL to replicate from; this process becomes a read-only follower (requires -data-dir)")
		replAddr   = flag.String("repl-addr", "", "separate listen address serving only the replication endpoints, keeping follower traffic off -addr (empty = disabled)")
	)
	flag.Parse()

	log.Printf("bootstrapping platform (seed=%d days=%d data-dir=%q)", *seed, *days, *dataDir)
	start := time.Now()
	platform, world, err := scilens.Bootstrap(scilens.BootstrapConfig{
		Seed: seed64(*seed), Days: *days, RateScale: *scale, ReactionScale: *reactions,
		Platform: scilens.Config{
			StreamAdaptive:       *adaptive,
			StreamMaxShards:      *maxShards,
			StreamMaxBatch:       *maxBatch,
			AdmissionRate:        *admitRate,
			AdmissionBurst:       *admitBurst,
			DataDir:              *dataDir,
			StoragePartitions:    *partitions,
			WALFsyncPolicy:       *fsync,
			CheckpointDeltaLimit: *deltaLimit,
			CheckpointInterval:   *ckptEvery,
			CheckpointWALBytes:   *ckptBytes,
			ReplicaOf:            *replicaOf,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if platform.IsFollower() {
		log.Printf("follower mode: replicating from %s (writes answer 503)", platform.PrimaryURL())
	}
	stats := platform.Stats()
	st := platform.StorageStats()
	if st.RecoveredRecords > 0 || st.Durable {
		log.Printf("storage: durable=%v rows=%d wal-records=%d fsync=%s gen=%d deltas=%d recovered=%d truncated=%v",
			st.Durable, st.Rows, st.WALRecords, st.WALFsyncPolicy,
			st.SnapshotGeneration, st.DeltaChainLength,
			st.RecoveredRecords, st.RecoveredTruncated)
	}
	if st.Durable && (*ckptEvery > 0 || *ckptBytes > 0) {
		log.Printf("checkpoint scheduler: interval=%v wal-bytes=%d", *ckptEvery, *ckptBytes)
	}
	log.Printf("ingested %d articles, %d reactions in %v",
		stats.Postings, stats.Reactions, time.Since(start).Round(time.Millisecond))
	log.Printf("example article: %s", world.Articles[0].URL)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           scilens.NewHTTPServer(platform),
		ReadHeaderTimeout: 5 * time.Second,
	}
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           scilens.NewDebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("debug surface (metrics, pprof) listening on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("debug listener: %v", err)
			}
		}()
	}
	if *replAddr != "" {
		rep := &http.Server{
			Addr:              *replAddr,
			Handler:           scilens.NewReplHandler(platform),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("replication endpoint listening on %s", *replAddr)
			if err := rep.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("replication listener: %v", err)
			}
		}()
	}
	// Graceful shutdown: stop accepting requests and let in-flight ones
	// finish, then drain the pipeline and (for durable stores) write a
	// final checkpoint. A failed persist exits non-zero so orchestrators
	// do not mistake it for a clean shutdown.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("shutting down: stopping HTTP, draining pipeline, checkpointing")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := platform.Close(); err != nil {
			log.Printf("close: %v", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
	log.Printf("indicators API listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// ListenAndServe returned because Shutdown ran; wait for the handler
	// goroutine to finish the checkpoint and exit the process.
	select {}
}

func seed64(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}
