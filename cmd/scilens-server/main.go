// Command scilens-server runs the full SciLens News Platform: it assembles
// the system, streams a synthetic firehose through the ingestion path, and
// serves the Indicators API micro-services (paper §3.3) over HTTP.
//
// Usage:
//
//	scilens-server [-addr :8080] [-seed N] [-days N] [-scale F]
//
// Endpoints:
//
//	GET  /api/assess?url=...|id=...   single-article assessment (Figure 3)
//	POST /api/assess                  evaluate an arbitrary document
//	GET  /api/insights/activity       newsroom activity series (Figure 4)
//	GET  /api/insights/engagement     reactions KDE (Figure 5 left)
//	GET  /api/insights/evidence       scientific-reference KDE (Figure 5 right)
//	GET  /api/insights/consensus      consensus experiment (claim C2)
//	POST /api/reviews                 submit an expert review (§3.2)
//	GET  /api/reviews?article_id=...  review aggregate for an article
//	GET  /api/health                  ingestion counters
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	scilens "repro"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		seed      = flag.Int64("seed", 1, "world seed")
		days      = flag.Int("days", 30, "collection window length in days")
		scale     = flag.Float64("scale", 0.5, "outlet posting-rate scale")
		reactions = flag.Float64("reactions", 0.3, "social cascade size scale")
	)
	flag.Parse()

	log.Printf("bootstrapping platform (seed=%d days=%d)", *seed, *days)
	start := time.Now()
	platform, world, err := scilens.Bootstrap(scilens.BootstrapConfig{
		Seed: seed64(*seed), Days: *days, RateScale: *scale, ReactionScale: *reactions,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := platform.Stats()
	log.Printf("ingested %d articles, %d reactions in %v",
		stats.Postings, stats.Reactions, time.Since(start).Round(time.Millisecond))
	log.Printf("example article: %s", world.Articles[0].URL)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           scilens.NewHTTPServer(platform),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("indicators API listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

func seed64(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}
