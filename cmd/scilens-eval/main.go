// Command scilens-eval regenerates the data behind every evaluation
// artifact of the paper — Figure 3 (single-article assessment), Figure 4
// (newsroom activity), Figure 5 (engagement and evidence KDEs) and the two
// prose claims C1 (ingestion throughput) and C2 (indicator-assisted
// consensus) — as aligned text tables on stdout.
//
// Usage:
//
//	scilens-eval [-fig 3|4|5|c1|c2|all] [-seed N] [-days N] [-scale F] [-reactions F]
//
// The corpus is deterministic for a fixed seed, so every run of the same
// configuration prints byte-identical series.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	scilens "repro"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "artifact to regenerate: 3, 4, 5, c1, c2 or all")
		seed      = flag.Int64("seed", 1, "world seed")
		days      = flag.Int("days", scilens.WindowDays, "collection window length in days")
		scale     = flag.Float64("scale", 1.0, "outlet posting-rate scale")
		reactions = flag.Float64("reactions", 0.5, "social cascade size scale")
		points    = flag.Int("points", 64, "KDE grid points")
		raters    = flag.Int("raters", 12, "consensus experiment rater-pool size")
		csvDir    = flag.String("csv", "", "also write each figure's series as CSV files into this directory")
	)
	flag.Parse()

	if err := run(*fig, *seed, *days, *scale, *reactions, *points, *raters, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "scilens-eval:", err)
		os.Exit(1)
	}
}

func run(fig string, seed int64, days int, scale, reactions float64, points, raters int, csvDir string) error {
	fmt.Printf("SciLens evaluation — seed=%d days=%d rate-scale=%.2f reaction-scale=%.2f\n",
		seed, days, scale, reactions)

	start := time.Now()
	platform, world, err := scilens.Bootstrap(scilens.BootstrapConfig{
		Seed: seed, Days: days, RateScale: scale, ReactionScale: reactions,
	})
	if err != nil {
		return err
	}
	ingestWall := time.Since(start)
	events := len(world.Events())
	fmt.Printf("corpus: %d articles, %d events ingested in %v\n\n",
		len(world.Articles), events, ingestWall.Round(time.Millisecond))

	want := func(name string) bool { return fig == "all" || fig == name }

	if want("3") {
		if err := printFigure3(platform, world); err != nil {
			return fmt.Errorf("figure 3: %w", err)
		}
	}
	if want("4") {
		if err := printFigure4(platform, world, days); err != nil {
			return fmt.Errorf("figure 4: %w", err)
		}
		if csvDir != "" {
			if err := writeFigure4CSV(platform, world, days, csvDir); err != nil {
				return fmt.Errorf("figure 4 csv: %w", err)
			}
		}
	}
	if want("5") {
		if err := printFigure5(platform, points); err != nil {
			return fmt.Errorf("figure 5: %w", err)
		}
		if csvDir != "" {
			if err := writeFigure5CSV(platform, points, csvDir); err != nil {
				return fmt.Errorf("figure 5 csv: %w", err)
			}
		}
	}
	if want("c1") {
		printClaimC1(events, ingestWall)
	}
	if want("c2") {
		if err := printClaimC2(platform, seed, raters); err != nil {
			return fmt.Errorf("claim c2: %w", err)
		}
	}
	return nil
}

// printFigure3 prints the single-article assessment panel for one article
// per rating class — the data behind the paper's UI exhibit.
func printFigure3(p *scilens.Platform, w *scilens.World) error {
	fmt.Println("=== Figure 3 — single-article assessment (one article per rating class) ===")
	fmt.Printf("%-10s  %-9s  %9s  %12s  %7s  %6s  %8s  %9s  %9s\n",
		"class", "article", "clickbait", "subjectivity", "grade", "byline",
		"sci-refs", "reactions", "composite")
	printed := map[scilens.RatingClass]bool{}
	for _, art := range w.Articles {
		a, err := p.AssessID(art.ID)
		if err != nil {
			return err
		}
		if printed[a.Rating] {
			continue
		}
		printed[a.Rating] = true
		fmt.Printf("%-10s  %-9s  %9.3f  %12.3f  %7.1f  %6v  %8d  %9d  %9.3f\n",
			a.Rating, a.ArticleID, a.Clickbait, a.Subjectivity, a.ReadingGrade,
			a.HasByline, a.SciRefs, a.Reactions, a.Composite)
		if len(printed) == scilens.NumClasses {
			break
		}
	}
	fmt.Println()
	return nil
}

// printFigure4 prints the newsroom-activity series: mean percentage of
// daily posts on the topic per rating class, 7-day smoothed like the
// published curves.
func printFigure4(p *scilens.Platform, w *scilens.World, days int) error {
	series, err := p.Figure4(w.Start, days)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 4 — mean % of daily posts on COVID-19 per rating class (7-day smoothed) ===")
	classes := []scilens.RatingClass{
		scilens.Excellent, scilens.Good, scilens.Mixed, scilens.Poor, scilens.VeryPoor,
	}
	fmt.Printf("%-5s", "day")
	for _, c := range classes {
		fmt.Printf("  %10s", c)
	}
	fmt.Println()
	for d := 0; d < series.Days; d++ {
		fmt.Printf("%-5d", d)
		for _, c := range classes {
			fmt.Printf("  %10.2f", series.MeanSharePct[c][d])
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("window means (paper shape: classes start close, low quality pulls ahead):")
	third := series.Days / 3
	fmt.Printf("%-10s  %12s  %12s  %12s\n", "class", "early third", "mid third", "late third")
	for _, c := range classes {
		fmt.Printf("%-10s  %12.2f  %12.2f  %12.2f\n", c,
			series.MeanOver(c, 0, third),
			series.MeanOver(c, third, 2*third),
			series.MeanOver(c, 2*third, series.Days))
	}
	fmt.Println()
	return nil
}

// printFigure5 prints both KDE panels: social-media reactions (left) and
// scientific-reference ratio (right).
func printFigure5(p *scilens.Platform, points int) error {
	eng, err := p.Figure5Engagement(points)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 5 (left) — KDE of social media reactions (log10 axis) ===")
	printDensities(eng)

	ev, err := p.Figure5Evidence(points)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 5 (right) — KDE of scientific-reference ratio ===")
	printDensities(ev)
	return nil
}

func printDensities(ds []scilens.ClassDensity) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Class < ds[j].Class })
	fmt.Printf("%-10s  %6s  %8s  %8s  %8s  %8s  %8s  %8s\n",
		"class", "n", "mean", "std", "p10", "median", "p90", "spread")
	for _, d := range ds {
		fmt.Printf("%-10s  %6d  %8.3f  %8.3f  %8.3f  %8.3f  %8.3f  %8.3f\n",
			d.Class, d.N, d.Mean, d.Std, d.P10, d.P50, d.P90, d.Spread())
	}
	fmt.Println()
	fmt.Println("density curves (y per grid x, sparkline per class):")
	for _, d := range ds {
		fmt.Printf("%-10s  %s\n", d.Class, sparkline(d.Grid.Y))
	}
	fmt.Println()
}

// sparkline renders a density curve with eight shade levels.
func sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	max := ys[0]
	for _, y := range ys {
		if y > max {
			max = y
		}
	}
	if max == 0 {
		max = 1
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, len(ys))
	for i, y := range ys {
		idx := int(y / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out[i] = levels[idx]
	}
	return string(out)
}

// printClaimC1 reports ingestion throughput against the paper's "daily
// thousands of news articles" operating point.
func printClaimC1(events int, wall time.Duration) {
	perSec := float64(events) / wall.Seconds()
	fmt.Println("=== Claim C1 — \"runs operationally handling daily thousands of news articles\" ===")
	fmt.Printf("events ingested:        %d\n", events)
	fmt.Printf("wall time:              %v\n", wall.Round(time.Millisecond))
	fmt.Printf("throughput:             %.0f events/s\n", perSec)
	fmt.Printf("daily capacity:         %.2e events/day (paper operating point: thousands of articles/day)\n",
		perSec*86400)
	fmt.Println()
}

// printClaimC2 runs the indicator-assisted consensus experiment.
func printClaimC2(p *scilens.Platform, seed int64, raters int) error {
	res, err := p.RunConsensusExperiment(scilens.ConsensusConfig{Seed: seed, Raters: raters})
	if err != nil {
		return err
	}
	fmt.Println("=== Claim C2 — indicators \"helped the platform users to have a better consensus\" ===")
	fmt.Printf("articles=%d raters=%d\n", res.Articles, res.Raters)
	fmt.Printf("%-28s  %10s  %10s\n", "metric", "without", "with")
	fmt.Printf("%-28s  %10.3f  %10.3f\n", "disagreement (mean std)", res.DisagreementWithout, res.DisagreementWith)
	fmt.Printf("%-28s  %10.3f  %10.3f\n", "per-rater MAE", res.MAEWithout, res.MAEWith)
	fmt.Printf("%-28s  %10.3f  %10.3f\n", "per-rater corr with truth", res.CorrWithout, res.CorrWith)
	fmt.Printf("disagreement reduction: %.1f%%   accuracy gain: %.1f%%\n",
		res.DisagreementReduction()*100, res.AccuracyGain()*100)
	fmt.Println()
	return nil
}

// writeFigure4CSV writes the activity series as fig4_activity.csv
// (day, one column per rating class).
func writeFigure4CSV(p *scilens.Platform, w *scilens.World, days int, dir string) error {
	series, err := p.Figure4(w.Start, days)
	if err != nil {
		return err
	}
	classes := []scilens.RatingClass{
		scilens.Excellent, scilens.Good, scilens.Mixed, scilens.Poor, scilens.VeryPoor,
	}
	rows := [][]string{{"day", "excellent", "good", "mixed", "poor", "very_poor"}}
	for d := 0; d < series.Days; d++ {
		row := []string{strconv.Itoa(d)}
		for _, c := range classes {
			row = append(row, strconv.FormatFloat(series.MeanSharePct[c][d], 'f', 4, 64))
		}
		rows = append(rows, row)
	}
	return writeCSV(filepath.Join(dir, "fig4_activity.csv"), rows)
}

// writeFigure5CSV writes both KDE panels as fig5_engagement.csv and
// fig5_evidence.csv (class, x, y per grid point).
func writeFigure5CSV(p *scilens.Platform, points int, dir string) error {
	panels := []struct {
		name string
		get  func(int) ([]scilens.ClassDensity, error)
	}{
		{"fig5_engagement.csv", p.Figure5Engagement},
		{"fig5_evidence.csv", p.Figure5Evidence},
	}
	for _, panel := range panels {
		ds, err := panel.get(points)
		if err != nil {
			return err
		}
		rows := [][]string{{"class", "x", "density"}}
		for _, d := range ds {
			for i := range d.Grid.X {
				rows = append(rows, []string{
					d.Class.String(),
					strconv.FormatFloat(d.Grid.X[i], 'f', 6, 64),
					strconv.FormatFloat(d.Grid.Y[i], 'f', 6, 64),
				})
			}
		}
		if err := writeCSV(filepath.Join(dir, panel.name), rows); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close() // the write failure is the error worth reporting
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close() // the flush failure is the error worth reporting
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows)-1)
	return f.Close()
}
