// Command scilens-ingest exercises the platform's streaming ingestion path
// in isolation: it generates a synthetic firehose, streams it through the
// broker with producer/consumer overlap (the production deployment shape)
// and reports end-to-end throughput — the engineering claim behind "runs
// operationally handling daily thousands of news articles" (paper §1).
//
// Usage:
//
//	scilens-ingest [-seed N] [-days N] [-scale F] [-consumers N] [-queue N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	scilens "repro"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "world seed")
		days      = flag.Int("days", 30, "collection window length in days")
		scale     = flag.Float64("scale", 1.0, "outlet posting-rate scale")
		reactions = flag.Float64("reactions", 0.5, "social cascade size scale")
		consumers = flag.Int("consumers", 4, "ingestion consumer-group size")
		queue     = flag.Int("queue", 8192, "per-partition queue capacity")
	)
	flag.Parse()

	if err := run(*seed, *days, *scale, *reactions, *consumers, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "scilens-ingest:", err)
		os.Exit(1)
	}
}

func run(seed int64, days int, scale, reactions float64, consumers, queue int) error {
	world := scilens.GenerateWorld(scilens.WorldConfig{
		Seed: seed, Days: days, RateScale: scale, ReactionScale: reactions,
	})
	events := world.Events()
	fmt.Printf("world: %d articles, %d events over %d days\n",
		len(world.Articles), len(events), world.Days)

	platform, err := scilens.New(scilens.Config{QueueCapacity: queue})
	if err != nil {
		return err
	}

	start := time.Now()
	n, err := platform.IngestWorld(world, consumers)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	stats := platform.Stats()
	perSec := float64(n) / wall.Seconds()
	articlesPerSec := float64(stats.Postings) / wall.Seconds()
	fmt.Printf("processed:       %d events in %v (%d consumers, queue %d)\n",
		n, wall.Round(time.Millisecond), consumers, queue)
	fmt.Printf("throughput:      %.0f events/s, %.0f articles/s\n", perSec, articlesPerSec)
	fmt.Printf("daily capacity:  %.2e events, %.2e articles\n", perSec*86400, articlesPerSec*86400)
	fmt.Printf("outcomes:        postings=%d reactions=%d parse-failures=%d orphans=%d\n",
		stats.Postings, stats.Reactions, stats.ParseFailures, stats.OrphanReactions)
	if stats.ParseFailures > 0 || stats.OrphanReactions > 0 {
		return fmt.Errorf("ingestion dropped events: %+v", stats)
	}
	return nil
}
