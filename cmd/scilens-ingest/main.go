// Command scilens-ingest exercises the platform's streaming ingestion path
// in isolation: it generates a synthetic firehose and streams it through
// the broker and the staged ingestion pipeline with producer/consumer
// overlap (the production deployment shape), reporting end-to-end
// throughput and the per-stage pipeline counters — the engineering claim
// behind "runs operationally handling daily thousands of news articles"
// (paper §1). The -sync flag runs the historic one-event-at-a-time loop
// instead, for an A/B on the same world.
//
// With -data-dir the run writes through the durable storage lifecycle:
// every committed row is write-ahead logged as it lands, and the closing
// checkpoint compacts the log into a snapshot — the kill-and-recover
// deployment shape, measurable against the in-memory default.
//
// With -adaptive the pipeline self-tunes under load: sustained queue
// pressure grows the worker-shard set (up to -max-shards) and widens the
// micro-batch ceiling (up to -max-batch); slack shrinks both back.
// -admit-rate adds per-source token-bucket admission with priority lanes
// on the HTTP ingest path (the broker path this command drives is
// trusted and bypasses admission).
//
// Usage:
//
//	scilens-ingest [-seed N] [-days N] [-scale F] [-consumers N] [-queue N]
//	               [-shards N] [-batch N] [-sync] [-adaptive] [-max-shards N]
//	               [-max-batch N] [-admit-rate F] [-admit-burst F]
//	               [-data-dir DIR] [-partitions N]
//	               [-fsync checkpoint|interval[:dur]|always] [-delta-limit N]
//	               [-checkpoint-interval DUR] [-checkpoint-wal-bytes N]
//	               [-debug-addr ADDR]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	scilens "repro"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "world seed")
		days       = flag.Int("days", 30, "collection window length in days")
		scale      = flag.Float64("scale", 1.0, "outlet posting-rate scale")
		reactions  = flag.Float64("reactions", 0.5, "social cascade size scale")
		consumers  = flag.Int("consumers", 4, "ingestion consumer-group size")
		queue      = flag.Int("queue", 8192, "per-partition broker queue capacity")
		shards     = flag.Int("shards", 4, "pipeline shard/worker count")
		batch      = flag.Int("batch", 64, "pipeline micro-batch size")
		syncMode   = flag.Bool("sync", false, "bypass the pipeline: synchronous one-event-at-a-time ingest")
		adaptive   = flag.Bool("adaptive", false, "enable the adaptive controller: dynamic resharding and micro-batch tuning under load")
		maxShards  = flag.Int("max-shards", 0, "adaptive shard-growth ceiling (0 = 4x -shards)")
		maxBatch   = flag.Int("max-batch", 0, "adaptive micro-batch ceiling (0 = 8x -batch)")
		admitRate  = flag.Float64("admit-rate", 0, "per-source steady admission rate on the HTTP ingest path, events/s (0 = admission off)")
		admitBurst = flag.Float64("admit-burst", 0, "per-source burst-lane admission rate, events/s (0 = same as -admit-rate)")
		dataDir    = flag.String("data-dir", "", "durable store directory (empty = in-memory)")
		partitions = flag.Int("partitions", 0, "table lock-stripe count (0 = default)")
		fsync      = flag.String("fsync", "checkpoint", "WAL fsync policy: checkpoint, interval[:dur] or always")
		deltaLimit = flag.Int("delta-limit", 0, "checkpoint delta-chain length before compaction (0 = default, <0 = always full)")
		ckptEvery  = flag.Duration("checkpoint-interval", 0, "self-driving checkpoint cadence during the run (0 = only the closing checkpoint)")
		ckptBytes  = flag.Int64("checkpoint-wal-bytes", 0, "checkpoint once the WAL grows this many bytes during the run (0 = no byte trigger)")
		debugAddr  = flag.String("debug-addr", "", "debug listen address serving /metrics and pprof during the run (empty = disabled)")
	)
	flag.Parse()

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           scilens.NewDebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			fmt.Printf("debug surface (metrics, pprof) listening on %s\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "scilens-ingest: debug listener:", err)
			}
		}()
	}

	cfg := scilens.Config{
		QueueCapacity:        *queue,
		StreamShards:         *shards,
		StreamBatchSize:      *batch,
		StreamAdaptive:       *adaptive,
		StreamMaxShards:      *maxShards,
		StreamMaxBatch:       *maxBatch,
		AdmissionRate:        *admitRate,
		AdmissionBurst:       *admitBurst,
		DataDir:              *dataDir,
		StoragePartitions:    *partitions,
		WALFsyncPolicy:       *fsync,
		CheckpointDeltaLimit: *deltaLimit,
		CheckpointInterval:   *ckptEvery,
		CheckpointWALBytes:   *ckptBytes,
	}
	if err := run(*seed, *days, *scale, *reactions, *consumers, *syncMode, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "scilens-ingest:", err)
		os.Exit(1)
	}
}

func run(seed int64, days int, scale, reactions float64, consumers int, syncMode bool, cfg scilens.Config) (err error) {
	world := scilens.GenerateWorld(scilens.WorldConfig{
		Seed: seed, Days: days, RateScale: scale, ReactionScale: reactions,
	})
	events := world.Events()
	fmt.Printf("world: %d articles, %d events over %d days\n",
		len(world.Articles), len(events), world.Days)

	platform, err := scilens.New(cfg)
	if err != nil {
		return err
	}
	// The closing checkpoint is the durability guarantee of a -data-dir
	// run; its failure must fail the command, not vanish in a defer.
	defer func() {
		if cerr := platform.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if st := platform.StorageStats(); st.Durable && st.Rows > 0 {
		fmt.Printf("recovered:       %d rows from %s (%d WAL records replayed)\n",
			st.Rows, st.Dir, st.RecoveredRecords)
	}

	start := time.Now()
	var n int
	if syncMode {
		for i := range events {
			// Per-event failures (orphans, parse failures) land in stats.
			_ = platform.IngestEvent(&events[i])
			n++
		}
	} else {
		if n, err = platform.IngestWorld(world, consumers); err != nil {
			return err
		}
	}
	wall := time.Since(start)

	stats := platform.Stats()
	perSec := float64(n) / wall.Seconds()
	articlesPerSec := float64(stats.Postings) / wall.Seconds()
	ss := platform.StreamStats()
	mode := fmt.Sprintf("streamed, %d consumers, %d shards, batch %d", consumers, ss.Shards, cfg.StreamBatchSize)
	if syncMode {
		mode = "synchronous"
	} else if cfg.StreamAdaptive {
		mode += fmt.Sprintf(" (adaptive: %d reshards, batch ceiling %d)", ss.Reshards, ss.BatchMax)
	}
	fmt.Printf("processed:       %d events in %v (%s)\n", n, wall.Round(time.Millisecond), mode)
	fmt.Printf("throughput:      %.0f events/s, %.0f articles/s\n", perSec, articlesPerSec)
	fmt.Printf("daily capacity:  %.2e events, %.2e articles\n", perSec*86400, articlesPerSec*86400)
	fmt.Printf("outcomes:        postings=%d reactions=%d parse-failures=%d orphans=%d\n",
		stats.Postings, stats.Reactions, stats.ParseFailures, stats.OrphanReactions)
	if !syncMode {
		fmt.Printf("pipeline:        enqueued=%d evaluated=%d committed=%d batches=%d retried=%d dead-lettered=%d shed=%d throttled=%d\n",
			ss.Enqueued, ss.Evaluated, ss.Committed, ss.Batches, ss.Retried, ss.DeadLettered, ss.Shed, ss.Throttled)
	}
	if st := platform.StorageStats(); st.Durable {
		fmt.Printf("storage:         rows=%d wal-records=%d wal-bytes=%d partitions(articles)=%d fsync=%s fsyncs=%d\n",
			st.Rows, st.WALRecords, st.WALBytes, st.TablePartitions["articles"],
			st.WALFsyncPolicy, st.WALFsyncs)
	}
	if stats.ParseFailures > 0 || stats.OrphanReactions > 0 {
		return fmt.Errorf("ingestion dropped events: %+v", stats)
	}
	return nil
}
