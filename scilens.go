package scilens

import (
	"net/http"
	"time"

	"repro/internal/analytics"
	"repro/internal/api"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/indicators"
	"repro/internal/outlets"
	"repro/internal/rdbms"
	"repro/internal/reviews"
	"repro/internal/socialind"
	"repro/internal/synth"
)

// Core platform types, re-exported from the assembly layer.
type (
	// Platform is the assembled SciLens system: streaming entry point,
	// hot store, warehouse, indicator engine and expert-review store.
	Platform = core.Platform
	// Config configures New.
	Config = core.Config
	// Assessment is the single-article view of paper Figure 3.
	Assessment = core.Assessment
	// IngestStats counts ingestion outcomes.
	IngestStats = core.IngestStats
	// TrainReport summarises a periodic model-training run.
	TrainReport = core.TrainReport
	// TrainOption customises a periodic training run (e.g. WithReindex).
	TrainOption = core.TrainOption
	// ReindexReport summarises one batch corpus re-evaluation run.
	ReindexReport = core.ReindexReport
	// ReindexOption customises a ReindexCorpus run (e.g. ReindexForce).
	ReindexOption = core.ReindexOption
	// StorageStats reports the store's partition layout, WAL volume and
	// checkpoint/recovery history (Platform.StorageStats).
	StorageStats = rdbms.StorageStats
	// CheckpointStats reports one completed checkpoint
	// (Platform.Checkpoint).
	CheckpointStats = rdbms.CheckpointStats
	// DailyReport summarises one RunDaily maintenance cycle (migration +
	// model training).
	DailyReport = core.DailyReport
	// TopicModelReport summarises a topic-discovery training run.
	TopicModelReport = core.TopicModelReport
	// ModelEvalReport scores a trained model against ground truth.
	ModelEvalReport = core.ModelEvalReport
	// OutletQualityScore is one outlet's review-derived quality estimate.
	OutletQualityScore = core.OutletQuality
	// ComputePool is the worker pool the parallel jobs run on (the
	// paper's Spark role).
	ComputePool = compute.Pool
	// StreamStats is the per-stage counter snapshot of the streaming
	// ingestion subsystem (pipeline stages, dead letters, live feed).
	StreamStats = core.StreamStats
	// LiveAssessment is one committed assessment as published on the live
	// feed (GET /api/stream).
	LiveAssessment = core.LiveAssessment
	// DeadLetter is one event the streaming pipeline gave up on, with its
	// failure reason; replay with Platform.ReplayDeadLetters.
	DeadLetter = core.DeadLetter
)

// NewComputePool builds a worker pool for the parallel training and
// analytics jobs; retries is the per-partition fault-retry budget.
func NewComputePool(workers, retries int) *ComputePool {
	return compute.NewPool(workers, retries)
}

// WithReindex makes a training job re-evaluate the stored corpus under the
// freshly attached model before returning (see Platform.ReindexCorpus), so
// stored assessments never mix model generations.
func WithReindex() TrainOption { return core.WithReindex() }

// ReindexForce makes ReindexCorpus re-evaluate every stored row, ignoring
// the incremental model-generation watermark that normally skips rows
// already current under the live models.
func ReindexForce() ReindexOption { return core.ReindexForce() }

// Indicator engine types.
type (
	// Engine computes indicator reports for article documents.
	Engine = indicators.Engine
	// EngineConfig configures NewEngine.
	EngineConfig = indicators.Config
	// Report is the full indicator bundle for one article.
	Report = indicators.Report
	// Post is one social-media posting in a reaction cascade.
	Post = socialind.Post
)

// Outlet registry types.
type (
	// Outlet is one news source.
	Outlet = outlets.Outlet
	// Registry resolves outlets by ID and by domain.
	Registry = outlets.Registry
	// RatingClass is the five-band outlet quality ranking.
	RatingClass = outlets.RatingClass
)

// Expert review types (paper §3.2).
type (
	// Review is one expert's annotation of one article on the seven
	// criteria.
	Review = reviews.Review
	// ReviewAggregate is the weighted, time-sensitive review summary.
	ReviewAggregate = reviews.Aggregate
	// Criterion indexes the seven review criteria.
	Criterion = reviews.Criterion
)

// Analytics types (paper §4).
type (
	// ActivitySeries is the Figure 4 newsroom-activity time series.
	ActivitySeries = analytics.ActivitySeries
	// ClassDensity is one rating class's KDE curve (Figure 5).
	ClassDensity = analytics.ClassDensity
	// ArticleFact is the flattened per-article record the analytics
	// consume.
	ArticleFact = analytics.ArticleFact
	// ConsensusConfig parameterises the consensus experiment (claim C2).
	ConsensusConfig = analytics.ConsensusConfig
	// ConsensusResult reports the consensus experiment.
	ConsensusResult = analytics.ConsensusResult
)

// Synthetic world types (the substitute for the proprietary firehose).
type (
	// World is a generated corpus: articles plus social cascades.
	World = synth.World
	// WorldConfig parameterises GenerateWorld.
	WorldConfig = synth.Config
	// Article is one generated news article.
	Article = synth.Article
	// Event is one firehose event (posting or reaction).
	Event = synth.Event
)

// Rating classes, best first (the ACSH-style five-band ranking).
const (
	Excellent  = outlets.Excellent
	Good       = outlets.Good
	Mixed      = outlets.Mixed
	Poor       = outlets.Poor
	VeryPoor   = outlets.VeryPoor
	NumClasses = outlets.NumClasses
)

// The seven expert-review criteria, in paper order (§3.2).
const (
	FactualAccuracy         = reviews.FactualAccuracy
	ScientificUnderstanding = reviews.ScientificUnderstanding
	LogicReasoning          = reviews.LogicReasoning
	PrecisionClarity        = reviews.PrecisionClarity
	SourcesQuality          = reviews.SourcesQuality
	Fairness                = reviews.Fairness
	Clickbaitness           = reviews.Clickbaitness
	NumCriteria             = reviews.NumCriteria
)

// Demo window: the paper's 60-day COVID-19 collection period.
var (
	// WindowStart is 2020-01-15 UTC.
	WindowStart = synth.WindowStart
)

// WindowDays is the demo collection window length (60).
const WindowDays = synth.WindowDays

// Sentinel errors.
var (
	// ErrNotIngested is returned when an article URL or ID is unknown to
	// the platform's store.
	ErrNotIngested = core.ErrNotIngested
	// ErrNoData is returned by analytics jobs with an empty segment.
	ErrNoData = analytics.ErrNoData
	// ErrFollower is returned by write entry points on a follower replica
	// (Config.ReplicaOf); writes go to the primary it names.
	ErrFollower = core.ErrFollower
)

// New assembles a platform: broker topic, store schemas, warehouse cluster
// and indicator engine. The zero Config is a working default (the 45-outlet
// demo shortlist, 4 partitions, 4 warehouse nodes, real clock, COVID-19
// topic segment).
func New(cfg Config) (*Platform, error) { return core.NewPlatform(cfg) }

// NewEngine builds a standalone indicator engine, for evaluating documents
// without assembling the full platform.
func NewEngine(cfg EngineConfig) *Engine { return indicators.NewEngine(cfg) }

// EvaluateDocument computes the full indicator report for one document with
// a default engine — the one-shot path behind "any arbitrary news article
// that a user wants to evaluate" (paper §4.1). For repeated evaluations
// construct one Engine (or Platform) and reuse it; the engine caches.
func EvaluateDocument(doc, url string) (*Report, error) {
	return NewEngine(EngineConfig{}).Evaluate(doc, url, nil)
}

// DemoShortlist returns the 45-outlet registry with the five-band quality
// ranking used by the paper's demonstration (§4).
func DemoShortlist() *Registry { return outlets.DemoShortlist() }

// GenerateWorld builds the deterministic synthetic corpus that substitutes
// the proprietary COVID-19 crawl: articles with embedded references plus
// social-media reaction cascades over the demo window.
func GenerateWorld(cfg WorldConfig) *World { return synth.GenerateWorld(cfg) }

// NewHTTPServer mounts the three Indicators API micro-services (assessment,
// insights, reviews; paper §3.3) for the platform on one handler.
func NewHTTPServer(p *Platform) http.Handler { return api.NewServer(p) }

// NewDebugHandler returns the standalone observability surface — GET
// /metrics, /api/version, /api/debug/traces and net/http/pprof — for a
// separate, non-public listener (the -debug-addr flag of both commands).
func NewDebugHandler() http.Handler { return api.DebugHandler() }

// NewReplHandler mounts only the replication endpoints (manifest,
// generation and WAL streaming) for a separate listener (-repl-addr),
// keeping follower traffic off the public API address. The same routes
// are always served on the main handler too.
func NewReplHandler(p *Platform) http.Handler { return api.NewReplService(p) }

// BootstrapConfig parameterises Bootstrap.
type BootstrapConfig struct {
	// Seed drives the synthetic world (default 1).
	Seed int64
	// Days is the generation window (default WindowDays = 60).
	Days int
	// RateScale scales per-outlet posting rates; < 1 shrinks the corpus
	// for fast experiments (default 1).
	RateScale float64
	// ReactionScale scales social cascade sizes (default 1).
	ReactionScale float64
	// Consumers is the ingestion consumer-group size (default 4).
	Consumers int
	// Platform overrides the platform configuration; its Clock default is
	// pinned to the end of the generation window so time-decayed review
	// weights are reproducible.
	Platform Config
}

// Bootstrap assembles a platform and streams a deterministic synthetic
// world through the full ingestion path (queue → extraction → indicators →
// store). It is the quickest route to a populated platform for examples,
// benchmarks and experiments.
func Bootstrap(cfg BootstrapConfig) (*Platform, *World, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Days <= 0 {
		cfg.Days = WindowDays
	}
	if cfg.RateScale == 0 {
		cfg.RateScale = 1
	}
	if cfg.ReactionScale == 0 {
		cfg.ReactionScale = 1
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 4
	}
	world := GenerateWorld(WorldConfig{
		Seed:          cfg.Seed,
		Registry:      cfg.Platform.Registry,
		Days:          cfg.Days,
		RateScale:     cfg.RateScale,
		ReactionScale: cfg.ReactionScale,
	})
	pc := cfg.Platform
	if pc.Clock == nil {
		end := world.Start.AddDate(0, 0, world.Days)
		pc.Clock = func() time.Time { return end }
	}
	platform, err := New(pc)
	if err != nil {
		return nil, nil, err
	}
	// A follower replica is populated by replication, never by local
	// ingest — writes would be rejected with ErrFollower anyway.
	recovered := pc.ReplicaOf != ""
	// A durable platform that recovered a non-empty corpus already holds
	// the world's rows (plus anything ingested since); re-streaming the
	// synthetic firehose would only re-evaluate what is already stored.
	if pc.DataDir != "" {
		if tbl, err := platform.DB.Table(core.ArticlesTable); err == nil && tbl.Len() > 0 {
			recovered = true
		}
	}
	if !recovered {
		if _, err := platform.IngestWorld(world, cfg.Consumers); err != nil {
			return nil, nil, err
		}
	}
	return platform, world, nil
}
