// Runnable godoc examples for the durable platform lifecycle. go test
// executes these, so the documented snippets cannot rot.
package scilens_test

import (
	"fmt"
	"os"

	scilens "repro"
)

// ExamplePlatform_Checkpoint demonstrates the operator loop of a durable
// platform: assemble with Config.DataDir, persist online with Checkpoint
// (incremental: only partitions dirtied since the last checkpoint are
// re-serialised), observe it in StorageStats, and shut down with Close
// (drains the pipeline, writes a final checkpoint, releases the store).
func ExamplePlatform_Checkpoint() {
	dir, err := os.MkdirTemp("", "scilens-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	platform, err := scilens.New(scilens.Config{
		DataDir:        dir,
		WALFsyncPolicy: "interval:25ms", // bound the power-loss window
	})
	if err != nil {
		panic(err)
	}

	st, err := platform.Checkpoint() // first checkpoint: a full base
	if err != nil {
		panic(err)
	}
	fmt.Printf("checkpoint: tables=%d full=%v\n", st.Tables, st.Full)

	ss := platform.StorageStats()
	fmt.Printf("storage: durable=%v generation=%d fsync=%s\n",
		ss.Durable, ss.SnapshotGeneration, ss.WALFsyncPolicy)

	if err := platform.Close(); err != nil {
		panic(err)
	}
	// Output:
	// checkpoint: tables=5 full=true
	// storage: durable=true generation=1 fsync=interval
}
